// Device constants of the paper's FPGA target: Alpha Data ADM-PCIE-7V3
// with a Xilinx Virtex-7 XC7VX690T-2, driven by SDAccel 2015.4 at
// 200 MHz (§IV-A), with a 512-bit memory interface [11].
#pragma once

#include <cstdint>

namespace dwi::fpga {

struct DeviceSpec {
  // --- silicon (Table II "Available" column) ----------------------------
  std::uint32_t slices = 107'400;   ///< each: 4 LUTs + 8 FFs (footnote 3)
  std::uint32_t dsps = 3'600;
  std::uint32_t bram36 = 1'470;

  // --- SDAccel flow ------------------------------------------------------
  double clock_hz = 200e6;          ///< achieved kernel clock
  unsigned mem_interface_bits = 512;  ///< AXI data width [11]
  /// Fraction of the device available to the reconfigurable OCL region
  /// (the rest is the PCIe/DDR static region) — Table II footnote 2.
  double ocl_region_fraction = 2.0 / 3.0;
  /// Empirical place-and-route ceiling on total slice utilization: the
  /// paper reached it by adding work-items one at a time until routing
  /// failed (§IV-C); ~80 % of the OCL region ≈ 54 % of the device.
  double route_ceiling_slice_util = 0.54;

  /// floats per full-width memory beat.
  unsigned floats_per_beat() const { return mem_interface_bits / 32; }
  /// Peak memory bandwidth in bytes/second (one beat per cycle).
  double peak_bandwidth_bytes() const {
    return clock_hz * mem_interface_bits / 8.0;
  }
};

/// The ADM-PCIE-7V3 as configured in the paper.
const DeviceSpec& adm_pcie_7v3();

/// A what-if target from the paper's own introduction: the Amazon EC2
/// F1 instance's Virtex UltraScale+ VU9P [2,3]. Resources expressed in
/// the same 4-LUT/8-FF slice units as Table II; four DDR4 channels and
/// a higher achievable kernel clock. Used by bench/extension_scaling
/// to project the design onto the platform the paper says the industry
/// is moving to.
const DeviceSpec& aws_f1_vu9p();

}  // namespace dwi::fpga
