// Tests for the paper's core contribution (src/core): the delayed
// counter workaround (Listing 2), the pipelined gamma work-item, the
// transfer unit packing (Listing 4), the decoupled-work-items dataflow
// (Listing 1), buffer combining (§III-E), and the end-to-end FPGA
// application runs.
#include <gtest/gtest.h>

#include <set>
#include <span>

#include "core/decoupled_work_items.h"
#include "core/delayed_counter.h"
#include "core/fpga_app.h"
#include "core/gamma_work_item.h"
#include "core/transfer_unit.h"
#include "stats/distributions.h"
#include "stats/ks_test.h"
#include "stats/moments.h"

namespace dwi::core {
namespace {

TEST(DelayedCounter, DelaysByBreakIdPlusOne) {
  DelayedCounter c(0);  // delay of one iteration (the paper's choice)
  // Iteration 1: shift (prev[0] <- 0), then increment.
  c.update_registers();
  EXPECT_EQ(c.delayed_value(), 0u);
  c.increment();
  EXPECT_EQ(c.value(), 1u);
  // Iteration 2: the delayed view now shows iteration 1's final value.
  c.update_registers();
  EXPECT_EQ(c.delayed_value(), 1u);
}

TEST(DelayedCounter, LargerBreakIdDelaysMore) {
  DelayedCounter c(2);  // delay of three iterations
  for (int it = 0; it < 5; ++it) {
    c.update_registers();
    const std::uint32_t expect = it < 3 ? 0u : static_cast<std::uint32_t>(it - 3 + 1);
    EXPECT_EQ(c.delayed_value(), expect) << "iteration " << it;
    c.increment();
  }
}

TEST(DelayedCounter, LoopRunsExactlyOneExtraIteration) {
  // Simulate MAINLOOP with limitMain = 5 and an always-valid output:
  // the delayed exit adds exactly breakId+1 = 1 harmless iteration,
  // and the guarded write keeps outputs at 5.
  DelayedCounter c(0);
  const std::uint32_t limit = 5;
  unsigned iterations = 0;
  unsigned outputs = 0;
  while (c.delayed_value() < limit) {
    ++iterations;
    c.update_registers();
    if (c.delayed_value() >= limit) break;
    if (c.value() < limit) {  // guarded write
      ++outputs;
      c.increment();
    }
  }
  EXPECT_EQ(outputs, limit);
  EXPECT_EQ(iterations, limit + 1);
}

TEST(DelayedCounter, ResetClearsRegisters) {
  DelayedCounter c(1);
  c.update_registers();
  c.increment();
  c.update_registers();
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(c.delayed_value(), 0u);
}

TEST(DelayedCounter, AchievedIiModel) {
  // RecMII = ceil(latency / (1 + delay)): each delay register widens
  // the recurrence distance, down to the II = 1 floor.
  EXPECT_EQ(achieved_initiation_interval(3, 0), 3u);
  EXPECT_EQ(achieved_initiation_interval(3, 1), 2u);
  EXPECT_EQ(achieved_initiation_interval(3, 2), 1u);
  EXPECT_EQ(achieved_initiation_interval(3, 5), 1u);
  EXPECT_EQ(achieved_initiation_interval(1, 0), 1u);
  // The paper's counter chain: latency 2, naive II = 2, and breakId=0
  // ("a delay of one cycle") already recovers II = 1.
  EXPECT_EQ(achieved_initiation_interval(2, 0), 2u);
  EXPECT_EQ(achieved_initiation_interval(2, 1), 1u);
}

TEST(GammaWorkItem, ProducesExactQuota) {
  GammaWorkItemConfig cfg;
  cfg.app = rng::config(rng::ConfigId::kConfig2);
  cfg.sector_variances = {1.39f, 0.5f, 2.0f};
  cfg.outputs_per_sector = 500;
  GammaWorkItem wi(cfg);
  EXPECT_EQ(wi.total_quota(), 1500u);
  std::uint64_t produced = 0;
  float v = 0.0f;
  while (!wi.finished()) {
    if (wi.produce(&v)) ++produced;
  }
  EXPECT_EQ(produced, 1500u);
  EXPECT_EQ(wi.outputs(), 1500u);
  EXPECT_GT(wi.iterations(), produced);  // rejections happened
}

TEST(GammaWorkItem, DistributionMatchesGamma) {
  GammaWorkItemConfig cfg;
  cfg.app = rng::config(rng::ConfigId::kConfig1);
  cfg.sector_variances = {1.39f};
  cfg.outputs_per_sector = 60000;
  GammaWorkItem wi(cfg);
  std::vector<double> xs;
  xs.reserve(cfg.outputs_per_sector);
  float v = 0.0f;
  while (!wi.finished()) {
    if (wi.produce(&v)) xs.push_back(static_cast<double>(v));
  }
  const auto g = stats::GammaParams::from_sector_variance(1.39);
  const auto ks = stats::ks_test(std::span<const double>(xs),
                                 [&](double x) {
                                   return stats::gamma_cdf(x, g.shape, g.scale);
                                 });
  EXPECT_GT(ks.p_value, 1e-4) << "KS D=" << ks.statistic;
}

TEST(GammaWorkItem, IcdfConfigDistributionAlsoCorrect) {
  // Config3 exercises the bit-level ICDF on the FPGA path.
  GammaWorkItemConfig cfg;
  cfg.app = rng::config(rng::ConfigId::kConfig3);
  cfg.sector_variances = {1.39f};
  cfg.outputs_per_sector = 60000;
  GammaWorkItem wi(cfg);
  stats::RunningMoments m;
  float v = 0.0f;
  while (!wi.finished()) {
    if (wi.produce(&v)) m.add(static_cast<double>(v));
  }
  EXPECT_NEAR(m.mean(), 1.0, 0.03);
  EXPECT_NEAR(m.variance(), 1.39, 0.12);
}

TEST(GammaWorkItem, RejectionRatesPerTransform) {
  auto rate = [](rng::ConfigId id) {
    GammaWorkItemConfig cfg;
    cfg.app = rng::config(id);
    cfg.sector_variances = {1.39f};
    cfg.outputs_per_sector = 40000;
    GammaWorkItem wi(cfg);
    float v = 0.0f;
    while (!wi.finished()) (void)wi.produce(&v);
    return wi.rejection_rate();
  };
  const double mb = rate(rng::ConfigId::kConfig1);
  const double icdf = rate(rng::ConfigId::kConfig3);
  // §IV-E shape: MB-combined ≫ ICDF-combined.
  EXPECT_GT(mb, 0.18);
  EXPECT_LT(mb, 0.32);
  EXPECT_LT(icdf, 0.08);
}

TEST(GammaWorkItem, PerSectorVariancesRespected) {
  GammaWorkItemConfig cfg;
  cfg.app = rng::config(rng::ConfigId::kConfig2);
  cfg.sector_variances = {0.3f, 3.0f};
  cfg.outputs_per_sector = 40000;
  GammaWorkItem wi(cfg);
  stats::RunningMoments first;
  stats::RunningMoments second;
  float v = 0.0f;
  std::uint64_t produced = 0;
  while (!wi.finished()) {
    if (wi.produce(&v)) {
      (produced < cfg.outputs_per_sector ? first : second)
          .add(static_cast<double>(v));
      ++produced;
    }
  }
  EXPECT_NEAR(first.variance(), 0.3, 0.05);
  EXPECT_NEAR(second.variance(), 3.0, 0.35);
  EXPECT_NEAR(first.mean(), 1.0, 0.03);
  EXPECT_NEAR(second.mean(), 1.0, 0.05);
}

TEST(GammaWorkItem, DistinctWorkItemsDecorrelated) {
  auto sample = [](unsigned wid) {
    GammaWorkItemConfig cfg;
    cfg.app = rng::config(rng::ConfigId::kConfig2);
    cfg.outputs_per_sector = 64;
    cfg.work_item_id = wid;
    GammaWorkItem wi(cfg);
    std::vector<float> out;
    float v = 0.0f;
    while (!wi.finished()) {
      if (wi.produce(&v)) out.push_back(v);
    }
    return out;
  };
  const auto a = sample(0);
  const auto b = sample(1);
  ASSERT_EQ(a.size(), b.size());
  int equal = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(GammaWorkItem, LimitMaxCapsRunawaySectors) {
  // Listing 2's limitMax is the safety bound on MAINLOOP: when it is
  // set too low for the stochastic process, the sector ends short and
  // the work-item reports fewer outputs than its quota instead of
  // spinning forever.
  GammaWorkItemConfig cfg;
  cfg.app = rng::config(rng::ConfigId::kConfig1);  // ~23 % rejection
  cfg.sector_variances = {1.39f};
  cfg.outputs_per_sector = 10'000;
  cfg.limit_max = 2'000;  // far below quota / (1 - r)
  GammaWorkItem wi(cfg);
  float v = 0.0f;
  std::uint64_t produced = 0;
  while (!wi.finished()) {
    if (wi.produce(&v)) ++produced;
  }
  EXPECT_LT(produced, 10'000u);
  EXPECT_LE(wi.iterations(), 2'000u);
}

TEST(GammaWorkItem, RunGammaTaskRejectsExhaustedWorkItem) {
  // The dataflow Task requires the full quota (the Transfer unit's
  // slice length is fixed); an exhausted work-item must surface as an
  // error, not a hang or a short buffer.
  DecoupledConfig cfg;
  cfg.work_items = 1;
  cfg.floats_per_work_item = 4096;
  EXPECT_THROW(run_gamma_task(cfg,
                              [](unsigned) {
                                GammaWorkItemConfig w;
                                w.app = rng::config(rng::ConfigId::kConfig1);
                                w.outputs_per_sector = 4096;
                                w.limit_max = 512;  // cannot reach quota
                                return w;
                              }),
               dwi::Error);
}

TEST(TransferUnit, PackUnpackRoundTrip) {
  MemoryWord word;
  unsigned lane = 0;
  for (int i = 0; i < 15; ++i) {
    EXPECT_FALSE(pack_g512(&word, static_cast<float>(i) * 0.5f, &lane));
  }
  EXPECT_TRUE(pack_g512(&word, 7.5f, &lane));  // 16th completes the word
  EXPECT_EQ(lane, 0u);
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(unpack_g512(word, i), static_cast<float>(i) * 0.5f);
  }
}

TEST(TransferUnit, DrainsStreamIntoDeviceBuffer) {
  hls::stream<float> s(32);
  constexpr std::uint64_t kFloats = 512;
  std::vector<MemoryWord> device(kFloats / 16);
  TransferUnitConfig cfg;
  cfg.total_floats = kFloats;
  cfg.words_per_burst = 4;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kFloats; ++i) {
      s.write(static_cast<float>(i));
    }
  });
  const auto words = run_transfer_unit(cfg, s, std::span<MemoryWord>(device));
  producer.join();
  EXPECT_EQ(words, kFloats / 16);
  for (std::uint64_t i = 0; i < kFloats; ++i) {
    EXPECT_FLOAT_EQ(unpack_g512(device[i / 16], i % 16),
                    static_cast<float>(i));
  }
}

TEST(TransferUnit, HonorsWorkItemOffset) {
  hls::stream<float> s(32);
  std::vector<MemoryWord> device(8);
  TransferUnitConfig cfg;
  cfg.total_floats = 64;      // 4 words
  cfg.word_offset = 4;        // second slice
  cfg.words_per_burst = 2;
  std::thread producer([&] {
    for (int i = 0; i < 64; ++i) s.write(1.0f);
  });
  run_transfer_unit(cfg, s, std::span<MemoryWord>(device));
  producer.join();
  EXPECT_TRUE(device[0].is_zero());
  EXPECT_FALSE(device[4].is_zero());
}

TEST(TransferUnit, RejectsMisalignedLength) {
  hls::stream<float> s(4);
  std::vector<MemoryWord> device(4);
  TransferUnitConfig cfg;
  cfg.total_floats = 17;  // not a multiple of 16
  EXPECT_THROW(run_transfer_unit(cfg, s, std::span<MemoryWord>(device)),
               dwi::Error);
}

TEST(DecoupledWorkItems, EndToEndDataIntegrity) {
  // Each work-item writes a distinctive ramp; the device buffer must
  // contain every value in the right slice — this is the Listing 1
  // structure moving real data through real FIFOs on real threads.
  DecoupledConfig cfg;
  cfg.work_items = 4;
  cfg.floats_per_work_item = 2048;
  cfg.stream_depth = 8;
  const auto result = run_decoupled_work_items(
      cfg, [](unsigned wid, hls::stream<float>& out, std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; ++i) {
          out.write(static_cast<float>(wid) * 1e6f + static_cast<float>(i));
        }
      });
  EXPECT_EQ(result.total_floats, 4u * 2048u);
  for (unsigned wid = 0; wid < 4; ++wid) {
    const auto slice = result.work_item_slice(wid, 2048);
    ASSERT_EQ(slice.size(), 2048u);
    for (std::size_t i = 0; i < slice.size(); ++i) {
      ASSERT_FLOAT_EQ(slice[i], static_cast<float>(wid) * 1e6f +
                                    static_cast<float>(i));
    }
  }
}

TEST(DecoupledWorkItems, GammaTaskProducesGammaDistribution) {
  DecoupledConfig cfg;
  cfg.work_items = 6;  // the paper's Config1/2 layout
  cfg.floats_per_work_item = 4096;
  const auto result = run_gamma_task(cfg, [](unsigned wid) {
    GammaWorkItemConfig w;
    w.app = rng::config(rng::ConfigId::kConfig2);
    w.sector_variances = {1.39f};
    w.outputs_per_sector = 4096;
    w.work_item_id = wid;
    return w;
  });
  const auto values = result.to_floats();
  ASSERT_EQ(values.size(), 6u * 4096u);
  stats::RunningMoments m;
  for (float v : values) m.add(static_cast<double>(v));
  EXPECT_NEAR(m.mean(), 1.0, 0.03);
  EXPECT_NEAR(m.variance(), 1.39, 0.12);
}

TEST(DecoupledWorkItems, HostLevelCombiningEquivalent) {
  // §III-E: both combining strategies must yield the same host buffer.
  const std::uint64_t floats_per_wi = 256;
  std::vector<std::vector<MemoryWord>> per_wi(3);
  std::vector<float> expected;
  for (unsigned wid = 0; wid < 3; ++wid) {
    per_wi[wid].resize(floats_per_wi / 16);
    unsigned lane = 0;
    std::uint64_t word = 0;
    MemoryWord acc;
    for (std::uint64_t i = 0; i < floats_per_wi; ++i) {
      const float v = static_cast<float>(wid * 1000 + i);
      expected.push_back(v);
      if (pack_g512(&acc, v, &lane)) {
        per_wi[wid][word++] = acc;
      }
    }
  }
  const auto host = combine_buffers_at_host(per_wi, floats_per_wi);
  ASSERT_EQ(host.size(), expected.size());
  for (std::size_t i = 0; i < host.size(); ++i) {
    ASSERT_FLOAT_EQ(host[i], expected[i]);
  }
}

TEST(FpgaApp, ConfigParametersMatchPaper) {
  EXPECT_EQ(config_initiation_interval(true), 1u);
  EXPECT_GT(config_initiation_interval(false), 1u);
  EXPECT_EQ(config_burst_beats(rng::config(rng::ConfigId::kConfig1)), 16u);
  EXPECT_EQ(config_burst_beats(rng::config(rng::ConfigId::kConfig3)), 18u);
}

TEST(FpgaApp, TableIiiFpgaColumn) {
  // FPGA runtimes within 5 % of Table III: 701 ms (Config1/2),
  // 642 ms (Config3/4). Simulated at 1/2048 scale for test speed.
  core::FpgaWorkload w;
  w.scale_divisor = 2048;
  const double paper_ms[4] = {701, 701, 642, 642};
  int i = 0;
  for (const auto& cfg : rng::all_configs()) {
    const auto r = run_fpga_application(cfg, w);
    EXPECT_NEAR(r.seconds_full * 1e3 / paper_ms[i], 1.0, 0.05) << cfg.name;
    ++i;
  }
}

TEST(FpgaApp, Eq1UnderestimatesMemoryBoundConfigs) {
  // §IV-E: Eq (1) is close for Config1/2 but ~35 % low for Config3/4,
  // because the transfers dominate there.
  core::FpgaWorkload w;
  w.scale_divisor = 2048;
  const auto c1 = run_fpga_application(rng::config(rng::ConfigId::kConfig1), w);
  const auto c3 = run_fpga_application(rng::config(rng::ConfigId::kConfig3), w);
  EXPECT_NEAR(c1.seconds_full / c1.eq1_seconds, 1.0, 0.15);
  EXPECT_GT(c3.seconds_full / c3.eq1_seconds, 1.3);
  EXPECT_GT(c3.compute_stall_fraction, c1.compute_stall_fraction);
}

TEST(FpgaApp, NaiveCounterSlowsKernel) {
  // The Listing 2 workaround is what keeps the FPGA competitive: with
  // the naive counter (II = 2) the compute side halves its issue rate
  // and the kernel becomes compute-bound.
  core::FpgaWorkload w;
  w.scale_divisor = 4096;
  const auto fast =
      run_fpga_application(rng::config(rng::ConfigId::kConfig1), w, 1, true);
  const auto slow =
      run_fpga_application(rng::config(rng::ConfigId::kConfig1), w, 1, false);
  EXPECT_GT(slow.seconds_full / fast.seconds_full, 1.5);
}

}  // namespace
}  // namespace dwi::core
