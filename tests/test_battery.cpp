// Tests for the statistical battery: every shipped generator passes,
// and deliberately broken generators fail the test that targets their
// defect — the battery's detection power is itself under test.
#include <gtest/gtest.h>

#include <random>

#include "rng/jump.h"
#include "rng/mersenne_twister.h"
#include "stats/battery.h"

namespace dwi::stats {
namespace {

constexpr double kAlpha = 1e-5;

TEST(Battery, Mt19937Passes) {
  rng::MersenneTwister mt(rng::mt19937_params(), 1u);
  const auto report = run_battery([&] { return mt.next(); });
  EXPECT_TRUE(report.all_pass(kAlpha)) << "min p " << report.min_p_value();
  EXPECT_EQ(report.results.size(), 6u);
}

TEST(Battery, Mt521Passes) {
  rng::MersenneTwister mt(rng::mt521_params(), 1u);
  const auto report = run_battery([&] { return mt.next(); });
  EXPECT_TRUE(report.all_pass(kAlpha)) << "min p " << report.min_p_value();
}

TEST(Battery, JumpedStreamPasses) {
  auto mt = rng::make_jumped(rng::mt521_params(), 9u, 1ull << 35);
  const auto report = run_battery([&] { return mt.next(); });
  EXPECT_TRUE(report.all_pass(kAlpha)) << "min p " << report.min_p_value();
}

TEST(Battery, AdaptedMtUnderRandomGatingPasses) {
  // The enable-gated twister's *committed* outputs are the plain
  // sequence; sample them under an adversarial gating pattern.
  rng::AdaptedMersenneTwister mt(rng::mt521_params(), 5u);
  std::mt19937 gate(77);
  const auto report = run_battery([&] {
    for (;;) {
      const bool enable = (gate() & 3u) != 0;
      const std::uint32_t v = mt.next(enable);
      if (enable) return v;
    }
  });
  EXPECT_TRUE(report.all_pass(kAlpha)) << "min p " << report.min_p_value();
}

TEST(Battery, CatchesStuckBit) {
  // Bit 7 forced to zero: the bit-frequency test must reject hard.
  rng::MersenneTwister mt(rng::mt19937_params(), 3u);
  const auto report =
      run_battery([&] { return mt.next() & ~(1u << 7); });
  EXPECT_FALSE(report.all_pass(kAlpha));
  const auto& bitfreq = report.results[0];
  EXPECT_EQ(bitfreq.name, "bit-frequency");
  EXPECT_LT(bitfreq.p_value, 1e-12);
}

TEST(Battery, CatchesSerialCorrelation) {
  // A generator that repeats every output twice: runs + serial tests
  // must reject.
  rng::MersenneTwister mt(rng::mt19937_params(), 5u);
  std::uint32_t held = 0;
  bool have = false;
  const auto report = run_battery([&] {
    if (have) {
      have = false;
      return held;
    }
    held = mt.next();
    have = true;
    return held;
  });
  EXPECT_FALSE(report.all_pass(kAlpha));
}

TEST(Battery, CatchesWeylLatticeStructure) {
  // A Weyl sequence (u += φ·2^32) is perfectly equidistributed but
  // strongly serially dependent: successive values differ by a
  // constant, so the serial-correlation / gap structure must reject.
  std::uint32_t state = 12345;
  const auto report = run_battery([&] {
    state += 0x9E3779B9u;
    return state;
  });
  EXPECT_FALSE(report.all_pass(kAlpha));
}

TEST(Battery, ReportRendering) {
  rng::MersenneTwister mt(rng::mt521_params(), 2u);
  const auto report = run_battery([&] { return mt.next(); }, 50'000);
  std::ostringstream os;
  report.render(os);
  EXPECT_NE(os.str().find("bit-frequency"), std::string::npos);
  EXPECT_NE(os.str().find("coupon"), std::string::npos);
}

TEST(Battery, RejectsTinySampleCounts) {
  rng::MersenneTwister mt(rng::mt521_params(), 2u);
  EXPECT_THROW(run_battery([&] { return mt.next(); }, 100), dwi::Error);
}

}  // namespace
}  // namespace dwi::stats
