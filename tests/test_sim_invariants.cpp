// Cross-cutting invariants of the timing engines: conservation laws in
// the FPGA kernel simulator (every produced float is transferred,
// channel accounting balances), multi-channel scaling, trace
// consistency, and monotonicity properties the models must obey.
#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "fpga/kernel_sim.h"
#include "fpga/memory_channel.h"
#include "rng/configs.h"
#include "simt/runtime_estimator.h"

namespace dwi {
namespace {

using fpga::BernoulliProducer;
using fpga::DummyProducer;
using fpga::KernelSimConfig;
using fpga::simulate_kernel;

TEST(KernelSimInvariant, EveryFloatIsTransferred) {
  // outputs · 1 float = beats · 16 floats (tail bursts pad, so beats
  // may round up by at most one per work-item).
  KernelSimConfig cfg;
  cfg.work_items = 5;
  cfg.outputs_per_work_item = 7'003;  // deliberately unaligned
  const auto r = simulate_kernel(cfg, [](unsigned w) {
    return std::make_unique<BernoulliProducer>(0.6, 3 + w);
  });
  EXPECT_EQ(r.outputs, 5u * 7'003u);
  std::uint64_t beats = 0;
  // beats = channel bytes / 64; recover from bandwidth accounting:
  beats = static_cast<std::uint64_t>(
      r.channel_bytes_per_cycle * static_cast<double>(r.cycles -
                                                      90) /  // latency pad
      64.0 + 0.5);
  const std::uint64_t min_beats = (r.outputs + 15) / 16;
  EXPECT_GE(beats + 5, min_beats);              // every float shipped
  EXPECT_LE(beats, min_beats + cfg.work_items); // at most 1 pad beat/WI
}

TEST(KernelSimInvariant, CyclesLowerBoundedByWork) {
  // cycles >= attempts / work_items (II = 1) and >= beats × beat time
  // on the saturated channel.
  KernelSimConfig cfg;
  cfg.work_items = 3;
  cfg.outputs_per_work_item = 20'000;
  const auto r = simulate_kernel(cfg, [](unsigned w) {
    return std::make_unique<BernoulliProducer>(0.75, 11 + w);
  });
  EXPECT_GE(r.cycles,
            r.attempts / cfg.work_items);
}

TEST(KernelSimInvariant, DeterministicGivenSeeds) {
  KernelSimConfig cfg;
  cfg.work_items = 4;
  cfg.outputs_per_work_item = 10'000;
  auto run = [&] {
    return simulate_kernel(cfg, [](unsigned w) {
      return std::make_unique<BernoulliProducer>(0.7, 101 + w);
    });
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.bursts, b.bursts);
}

TEST(KernelSimInvariant, MoreWorkItemsNeverSlower) {
  // Fixed total work split over more pipelines can only help (or tie
  // at the memory bound).
  std::uint64_t prev_cycles = ~std::uint64_t{0};
  for (unsigned n : {1u, 2u, 4u, 8u}) {
    KernelSimConfig cfg;
    cfg.work_items = n;
    cfg.outputs_per_work_item = 96'000 / n;
    const auto r = simulate_kernel(cfg, [](unsigned w) {
      return std::make_unique<BernoulliProducer>(0.766, 7 + w);
    });
    EXPECT_LE(r.cycles, prev_cycles + prev_cycles / 50) << n;
    prev_cycles = r.cycles;
  }
}

TEST(KernelSimInvariant, SecondChannelRelievesTheBottleneck) {
  KernelSimConfig cfg;
  cfg.work_items = 8;
  cfg.burst_beats = 18;
  cfg.outputs_per_work_item = 40'000;
  auto cycles_with = [&](unsigned channels) {
    cfg.memory_channels = channels;
    return simulate_kernel(cfg, [](unsigned) {
             return std::make_unique<DummyProducer>();
           }).cycles;
  };
  const auto one = cycles_with(1);
  const auto two = cycles_with(2);
  // One channel is memory-bound (~19 B/cycle for 8 WIs wanting 32);
  // two channels make the run compute-bound at ~1 float/cycle/WI.
  EXPECT_LT(static_cast<double>(two), 0.65 * static_cast<double>(one));
  // With ample channels the kernel is compute-bound: 1 float/cycle/WI.
  const auto four = cycles_with(4);
  EXPECT_NEAR(static_cast<double>(four),
              40'000.0 * 16 / 16 + 90.0 + 720.0, 900.0);
}

TEST(KernelSimInvariant, DependencePragmaBuysThroughput) {
  // Listing 4's DEPENDENCE-false double buffering: at the Config1
  // operating point with a shallow stream, removing it costs real
  // runtime (collection freezes during each burst service).
  KernelSimConfig cfg;
  cfg.work_items = 6;
  cfg.burst_beats = 16;
  cfg.stream_depth = 2;
  cfg.outputs_per_work_item = 50'000;
  auto run = [&](bool double_buffered) {
    cfg.transfer_double_buffered = double_buffered;
    return simulate_kernel(cfg, [](unsigned w) {
      return std::make_unique<BernoulliProducer>(0.766, 13 + w);
    });
  };
  const auto with_pragma = run(true);
  const auto without = run(false);
  EXPECT_GT(static_cast<double>(without.cycles),
            1.08 * static_cast<double>(with_pragma.cycles));
  EXPECT_GT(without.compute_stall_cycles,
            3 * with_pragma.compute_stall_cycles);
}

TEST(KernelSimInvariant, TraceShapesConsistent) {
  fpga::ScheduleTrace trace;
  KernelSimConfig cfg;
  cfg.work_items = 3;
  cfg.outputs_per_work_item = 2'000;
  cfg.trace = &trace;
  const auto r = simulate_kernel(cfg, [](unsigned) {
    return std::make_unique<DummyProducer>();
  });
  const std::uint64_t sim_cycles = r.cycles - cfg.pipeline_latency;
  ASSERT_EQ(trace.work_items.size(), 3u);
  for (const auto& row : trace.work_items) {
    EXPECT_EQ(row.size(), sim_cycles);
  }
  EXPECT_EQ(trace.channel.size(), sim_cycles);
  // A dummy producer at II=1 computes every cycle until done.
  EXPECT_EQ(trace.work_items[0].find('-'), std::string::npos);
  EXPECT_NE(trace.channel.find('0'), std::string::npos);
}

TEST(KernelSimInvariant, TraceShowsIiWaitStates) {
  // At II = 2 (the naive-counter ablation) every other cycle is an
  // initiation-interval wait, visible as '-' in the Fig 3 trace.
  fpga::ScheduleTrace trace;
  KernelSimConfig cfg;
  cfg.work_items = 1;
  cfg.initiation_interval = 2;
  cfg.outputs_per_work_item = 512;
  cfg.trace = &trace;
  (void)simulate_kernel(cfg, [](unsigned) {
    return std::make_unique<DummyProducer>();
  });
  const auto& row = trace.work_items[0];
  const auto waits = static_cast<double>(
      std::count(row.begin(), row.end(), '-'));
  const auto computes = static_cast<double>(
      std::count(row.begin(), row.end(), 'C'));
  EXPECT_NEAR(waits / computes, 1.0, 0.1);
}

TEST(MemoryChannelInvariant, BusyCyclesNeverExceedTotal) {
  fpga::MemoryChannel ch;
  std::mt19937 eng(5);
  for (int i = 0; i < 200; ++i) {
    (void)ch.request_burst(eng() % 8, 1 + eng() % 32);
    for (int t = 0; t < 20; ++t) ch.tick();
    for (unsigned q = 0; q < 8; ++q) (void)ch.burst_done(q);
  }
  EXPECT_LE(ch.busy_cycles(), ch.cycles());
  EXPECT_LE(ch.data_cycles(), ch.busy_cycles());
}

TEST(SimtInvariant, EfficiencyBounds) {
  // SIMD efficiency is a fraction in (0, 1]; issued >= useful/width.
  simt::NdRangeWorkload w;
  w.total_outputs = 1ull << 22;
  for (const auto* p : {&simt::cpu_haswell(), &simt::gpu_tesla_k80(),
                        &simt::phi_7120p()}) {
    for (const auto& cfg : rng::all_configs()) {
      const auto e = simt::estimate_runtime(*p, cfg,
                                            cfg.fixed_arch_transform, w);
      EXPECT_GT(e.simd_efficiency, 0.0) << p->name << " " << cfg.name;
      EXPECT_LE(e.simd_efficiency, 1.0 + 1e-12);
      EXPECT_GT(e.seconds, 0.0);
    }
  }
}

TEST(SimtInvariant, RuntimeScalesLinearlyAtFixedQuota) {
  // Scaling outputs AND global size together (fixed per-work-item
  // quota) must scale runtime linearly: seeding and utilization
  // factors are unchanged.
  simt::NdRangeWorkload small;
  small.total_outputs = 1ull << 24;
  small.global_size = 65'536;
  simt::NdRangeWorkload large;
  large.total_outputs = 1ull << 26;
  large.global_size = 262'144;
  const auto& cfg = rng::config(rng::ConfigId::kConfig2);
  const auto a = simt::estimate_runtime(simt::phi_7120p(), cfg,
                                        rng::NormalTransform::kMarsagliaBray,
                                        small);
  const auto b = simt::estimate_runtime(simt::phi_7120p(), cfg,
                                        rng::NormalTransform::kMarsagliaBray,
                                        large);
  EXPECT_NEAR(b.seconds / a.seconds, 4.0, 0.25);
}

TEST(SimtInvariant, SeedingOverheadShrinksWithQuota) {
  // At fixed global size, quadrupling the outputs less-than-quadruples
  // the runtime: the per-work-item PRNG seeding amortizes — the Fig 5b
  // right-edge mechanism, visible as sublinear scaling here.
  simt::NdRangeWorkload small;
  small.total_outputs = 1ull << 22;
  simt::NdRangeWorkload large;
  large.total_outputs = 1ull << 24;
  const auto& cfg = rng::config(rng::ConfigId::kConfig1);  // big MT state
  const auto a = simt::estimate_runtime(simt::cpu_haswell(), cfg,
                                        rng::NormalTransform::kMarsagliaBray,
                                        small);
  const auto b = simt::estimate_runtime(simt::cpu_haswell(), cfg,
                                        rng::NormalTransform::kMarsagliaBray,
                                        large);
  EXPECT_LT(b.seconds / a.seconds, 4.0);
  EXPECT_GT(b.seconds / a.seconds, 2.0);
}

TEST(SimtInvariant, MoreRejectionMeansMoreSlotsPerOutput) {
  simt::NdRangeWorkload w;
  w.total_outputs = 1ull << 22;
  const auto mb = simt::estimate_runtime(
      simt::gpu_tesla_k80(), rng::config(rng::ConfigId::kConfig2),
      rng::NormalTransform::kMarsagliaBray, w);
  const auto icdf = simt::estimate_runtime(
      simt::gpu_tesla_k80(), rng::config(rng::ConfigId::kConfig4),
      rng::NormalTransform::kIcdfCuda, w);
  EXPECT_GT(mb.rejection_rate, icdf.rejection_rate);
  EXPECT_GT(mb.slots_per_output, icdf.slots_per_output);
}

}  // namespace
}  // namespace dwi
