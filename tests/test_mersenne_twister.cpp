// Tests for the Mersenne-Twister family: bit-exactness of MT19937
// against std::mt19937, statistical sanity of the MT(521) parameter
// set, and the Listing 3 invariant of the adapted (enable-gated)
// generator: filtering by enable reproduces the plain sequence exactly.
#include <gtest/gtest.h>

#include <random>
#include <span>
#include <vector>

#include "common/bits.h"
#include "rng/mersenne_twister.h"
#include "stats/chi_square.h"
#include "stats/histogram.h"
#include "stats/ks_test.h"
#include "stats/moments.h"

namespace dwi::rng {
namespace {

TEST(MersenneTwister, Mt19937BitExactVsStd) {
  MersenneTwister mt(mt19937_params(), 5489u);
  std::mt19937 ref(5489u);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(mt.next(), ref()) << "diverged at step " << i;
  }
}

TEST(MersenneTwister, Mt19937KnownTenThousandth) {
  // The canonical check: the 10000th output of mt19937 seeded with
  // 5489 is 4123659995.
  MersenneTwister mt(mt19937_params(), 5489u);
  std::uint32_t last = 0;
  for (int i = 0; i < 10000; ++i) last = mt.next();
  EXPECT_EQ(last, 4123659995u);
}

TEST(MersenneTwister, SeedResetsSequence) {
  MersenneTwister mt(mt19937_params(), 1u);
  std::vector<std::uint32_t> first(100);
  for (auto& v : first) v = mt.next();
  mt.seed(1u);
  for (auto v : first) EXPECT_EQ(mt.next(), v);
}

TEST(MersenneTwister, DistinctSeedsDiverge) {
  MersenneTwister a(mt19937_params(), 1u);
  MersenneTwister b(mt19937_params(), 2u);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(MersenneTwister, PeriodExponents) {
  EXPECT_EQ(mt19937_params().period_exponent(), 19937u);
  EXPECT_EQ(mt521_params().period_exponent(), 521u);
  EXPECT_EQ(mt19937_params().n, 624u);   // Table I: 624 states
  EXPECT_EQ(mt521_params().n, 17u);      // Table I: 17 states
}

TEST(MersenneTwister, GeometryValidation) {
  MtParams bad = mt19937_params();
  bad.m = bad.n;  // middle offset out of range
  EXPECT_THROW(MersenneTwister{bad}, dwi::Error);
}

class MtUniformity : public ::testing::TestWithParam<int> {};

TEST_P(MtUniformity, OutputIsUniform) {
  // Both parameter sets must pass KS + chi-square uniformity and have
  // the moments of U(0,1). This is the statistical validation standing
  // in for the DCMT period proof (see mersenne_twister.h).
  const bool use_521 = GetParam() == 521;
  MersenneTwister mt(use_521 ? mt521_params() : mt19937_params(), 1234u);
  constexpr int kN = 200000;
  std::vector<double> xs(kN);
  stats::RunningMoments m;
  stats::Histogram h(0.0, 1.0, 64);
  for (auto& x : xs) {
    x = uint2double(mt.next());
    m.add(x);
    h.add(x);
  }
  EXPECT_NEAR(m.mean(), 0.5, 0.005);
  EXPECT_NEAR(m.variance(), 1.0 / 12.0, 0.002);

  const auto ks = stats::ks_test(
      std::span<const double>(xs),
      [](double x) { return x < 0 ? 0.0 : (x > 1 ? 1.0 : x); });
  EXPECT_GT(ks.p_value, 1e-3) << "KS D=" << ks.statistic;

  const auto chi = stats::chi_square_test(
      h, [](double x) { return x < 0 ? 0.0 : (x > 1 ? 1.0 : x); });
  EXPECT_GT(chi.p_value, 1e-3) << "X2=" << chi.statistic;
}

INSTANTIATE_TEST_SUITE_P(BothPeriods, MtUniformity,
                         ::testing::Values(19937, 521));

TEST(MersenneTwister, Mt521SuccessivePairsDecorrelated) {
  MersenneTwister mt(mt521_params(), 99u);
  // Serial correlation of successive outputs must be ~0.
  double sum_xy = 0.0;
  double sum_x = 0.0;
  double sum_x2 = 0.0;
  constexpr int kN = 100000;
  double prev = uint2double(mt.next());
  for (int i = 0; i < kN; ++i) {
    const double cur = uint2double(mt.next());
    sum_xy += prev * cur;
    sum_x += prev;
    sum_x2 += prev * prev;
    prev = cur;
  }
  const double n = kN;
  const double mean = sum_x / n;
  const double var = sum_x2 / n - mean * mean;
  const double cov = sum_xy / n - mean * mean;
  EXPECT_NEAR(cov / var, 0.0, 0.02);
}

// --- Listing 3: adapted (enable-gated) Mersenne-Twister -------------------

TEST(AdaptedMt, EnabledStepsReproducePlainSequence) {
  // The invariant of §III-C: whatever the enable pattern, the sequence
  // of outputs observed at enabled steps equals the plain MT sequence.
  MersenneTwister plain(mt19937_params(), 7u);
  AdaptedMersenneTwister gated(mt19937_params(), 7u);
  std::mt19937 pattern(42);
  int enabled_count = 0;
  while (enabled_count < 5000) {
    const bool enable = (pattern() & 3u) != 0;  // 75% enabled
    const std::uint32_t out = gated.next(enable);
    if (enable) {
      ASSERT_EQ(out, plain.next()) << "at enabled step " << enabled_count;
      ++enabled_count;
    }
  }
  EXPECT_EQ(gated.committed_steps(), 5000u);
}

TEST(AdaptedMt, DisabledCallsReturnStableValue) {
  // While disabled, the datapath re-reads the same state word: the
  // output must be identical from call to call (no hidden advance).
  AdaptedMersenneTwister gated(mt521_params(), 3u);
  const std::uint32_t v0 = gated.next(false);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(gated.next(false), v0);
  // The first enabled call still returns that same value and commits.
  EXPECT_EQ(gated.next(true), v0);
  EXPECT_NE(gated.next(false), v0);  // next state word differs (w.h.p.)
}

TEST(AdaptedMt, WorksAcrossBlockRegeneration) {
  // Stress the lazy block-twist across the n-word boundary for the
  // small generator (n = 17): many disabled calls interleaved.
  MersenneTwister plain(mt521_params(), 11u);
  AdaptedMersenneTwister gated(mt521_params(), 11u);
  std::mt19937 pattern(4242);
  for (int step = 0; step < 2000; ++step) {
    const bool enable = (pattern() & 1u) != 0;
    const std::uint32_t out = gated.next(enable);
    if (enable) {
      ASSERT_EQ(out, plain.next()) << "step " << step;
    }
  }
}

TEST(AdaptedMt, AlwaysEnabledEqualsPlain) {
  MersenneTwister plain(mt19937_params(), 77u);
  AdaptedMersenneTwister gated(mt19937_params(), 77u);
  for (int i = 0; i < 3000; ++i) ASSERT_EQ(gated.next(true), plain.next());
}

TEST(AdaptedMt, SeedResetsCommitCount) {
  AdaptedMersenneTwister gated(mt521_params(), 1u);
  gated.next(true);
  gated.next(true);
  EXPECT_EQ(gated.committed_steps(), 2u);
  gated.seed(1u);
  EXPECT_EQ(gated.committed_steps(), 0u);
}

}  // namespace
}  // namespace dwi::rng
