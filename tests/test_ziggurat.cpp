// Tests for the ziggurat gaussian generator: distributional
// correctness (KS + Anderson-Darling, which would catch a broken
// wedge/tail), moments, the documented fast-path rate, and tail
// coverage beyond the rightmost layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "rng/mersenne_twister.h"
#include "rng/ziggurat.h"
#include "stats/anderson_darling.h"
#include "stats/distributions.h"
#include "stats/ks_test.h"
#include "stats/moments.h"

namespace dwi::rng {
namespace {

std::vector<double> draw(std::size_t n, std::uint32_t seed) {
  ZigguratNormal zig;
  MersenneTwister mt(mt19937_params(), seed);
  auto src = [&] { return mt.next(); };
  std::vector<double> xs(n);
  for (auto& x : xs) x = static_cast<double>(zig.sample(src));
  return xs;
}

TEST(Ziggurat, MomentsOfStandardNormal) {
  const auto xs = draw(300'000, 1u);
  stats::RunningMoments m;
  m.add(std::span<const double>(xs));
  EXPECT_NEAR(m.mean(), 0.0, 0.01);
  EXPECT_NEAR(m.variance(), 1.0, 0.01);
  EXPECT_NEAR(m.skewness(), 0.0, 0.02);
  EXPECT_NEAR(m.excess_kurtosis(), 0.0, 0.05);
}

TEST(Ziggurat, KsAndAndersonDarling) {
  const auto xs = draw(200'000, 2u);
  const auto ks = stats::ks_test(std::span<const double>(xs),
                                 [](double x) { return stats::normal_cdf(x); });
  EXPECT_GT(ks.p_value, 1e-3) << "KS D=" << ks.statistic;
  // A-D verifies the wedge and tail handling specifically.
  const auto ad = stats::anderson_darling_test(
      std::span<const double>(xs),
      [](double x) { return stats::normal_cdf(x); });
  EXPECT_GT(ad.p_value, 1e-3) << "A2*=" << ad.a2_star;
}

TEST(Ziggurat, FastPathRateNearTheory) {
  // The 128-layer ziggurat resolves ~97-98 % of draws in the rectangle
  // test (one compare + one multiply).
  ZigguratNormal zig;
  MersenneTwister mt(mt19937_params(), 3u);
  auto src = [&] { return mt.next(); };
  for (int i = 0; i < 200'000; ++i) (void)zig.sample(src);
  EXPECT_GT(zig.slow_path_rate(), 0.015);
  EXPECT_LT(zig.slow_path_rate(), 0.05);
}

TEST(Ziggurat, TailBeyondRIsExercised) {
  // P(|X| > 3.4426) ≈ 5.76e-4: a 600k-draw run must produce tail
  // samples, and their distribution must not truncate at r.
  const auto xs = draw(600'000, 4u);
  const double r = 3.442619855899;
  std::size_t beyond = 0;
  double max_abs = 0.0;
  for (double x : xs) {
    const double a = std::abs(x);
    if (a > r) ++beyond;
    max_abs = std::max(max_abs, a);
  }
  const double expected =
      2.0 * (1.0 - stats::normal_cdf(r)) * static_cast<double>(xs.size());
  EXPECT_NEAR(static_cast<double>(beyond) / expected, 1.0, 0.25);
  EXPECT_GT(max_abs, r + 0.3);  // the tail sampler really extends past r
}

TEST(Ziggurat, SymmetricInSign) {
  const auto xs = draw(200'000, 5u);
  std::size_t pos = 0;
  for (double x : xs) {
    if (x > 0) ++pos;
  }
  EXPECT_NEAR(static_cast<double>(pos) / static_cast<double>(xs.size()), 0.5,
              0.005);
}

}  // namespace
}  // namespace dwi::rng
