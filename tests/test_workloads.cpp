// Tests for the divergent-kernel zoo (src/workloads): the
// ForwardingBuffer hazard unit, and the histogram / SpMV / maximal
// matching kernels under both scheduling modes. The load-bearing
// invariant everywhere: SchedulingMode moves cycles, never values —
// every kernel is bit-identical to its scalar host oracle in both
// modes, and the cycle accounting explains where the modes differ.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "rng/mersenne_twister.h"
#include "workloads/forwarding_buffer.h"
#include "workloads/histogram.h"
#include "workloads/matching.h"
#include "workloads/scheduling.h"
#include "workloads/spmv.h"

namespace dwi::workloads {
namespace {

rng::MersenneTwister test_rng(std::uint32_t seed = 12345) {
  return rng::MersenneTwister(rng::mt19937_params(), seed);
}

// ---------------------------------------------------------------------
// SchedulingMode round trip
// ---------------------------------------------------------------------

TEST(SchedulingMode, ToStringRoundTrips) {
  for (const SchedulingMode mode :
       {SchedulingMode::kStatic, SchedulingMode::kDynamic}) {
    const auto parsed = parse_scheduling_mode(to_string(mode));
    ASSERT_TRUE(parsed.has_value()) << to_string(mode);
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(parse_scheduling_mode("greedy").has_value());
  EXPECT_FALSE(parse_scheduling_mode("").has_value());
}

// ---------------------------------------------------------------------
// ForwardingBuffer
// ---------------------------------------------------------------------

TEST(ForwardingBuffer, SnoopsOnlyTheInFlightWindow) {
  ForwardingBuffer<> fb(3);
  EXPECT_FALSE(fb.snoop(7));  // empty window
  fb.push(7);
  EXPECT_TRUE(fb.snoop(7));
  EXPECT_FALSE(fb.snoop(8));
  // Age the entry out: after `depth` further cycles it has retired.
  fb.push_bubble();
  fb.push_bubble();
  EXPECT_TRUE(fb.snoop(7));  // still in the last slot
  fb.push_bubble();
  EXPECT_FALSE(fb.snoop(7));  // retired
  EXPECT_EQ(fb.snoops(), 5u);
  EXPECT_EQ(fb.hits(), 2u);
}

TEST(ForwardingBuffer, BubblesAgeEntriesLikeIssuedUpdates) {
  ForwardingBuffer<> fb(2);
  fb.push(1);
  fb.push(2);
  EXPECT_TRUE(fb.snoop(1));
  EXPECT_TRUE(fb.snoop(2));
  fb.push(3);  // evicts 1
  EXPECT_FALSE(fb.snoop(1));
  EXPECT_TRUE(fb.snoop(2));
  EXPECT_TRUE(fb.snoop(3));
}

TEST(ForwardingBuffer, ResetClearsWindowAndCounters) {
  ForwardingBuffer<> fb(2);
  fb.push(5);
  EXPECT_TRUE(fb.snoop(5));
  fb.reset();
  EXPECT_FALSE(fb.snoop(5));
  EXPECT_EQ(fb.snoops(), 1u);
  EXPECT_EQ(fb.hits(), 0u);
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

TEST(Histogram, BothModesMatchTheOracleBitExactly) {
  auto mt = test_rng();
  const auto next = [&mt] { return mt.next(); };
  for (const float hot : {0.0f, 0.3f, 1.0f}) {
    const HistogramTrace trace = make_histogram_trace(2000, 64, hot, next);
    const std::vector<float> oracle =
        histogram_oracle(64, trace.addrs, trace.weights);
    for (const SchedulingMode mode :
         {SchedulingMode::kStatic, SchedulingMode::kDynamic}) {
      HistogramConfig cfg;
      cfg.num_bins = 64;
      cfg.mode = mode;
      const HistogramOutput out =
          run_histogram(cfg, trace.addrs, trace.weights);
      ASSERT_EQ(out.bins.size(), oracle.size());
      for (std::size_t b = 0; b < oracle.size(); ++b) {
        // Bit-exact, not approximately equal: scheduling must not
        // reassociate the float sums.
        EXPECT_EQ(out.bins[b], oracle[b]) << "bin " << b << " hot=" << hot
                                          << " mode=" << to_string(mode);
      }
      EXPECT_EQ(out.stats.initiations, trace.addrs.size());
    }
  }
}

TEST(Histogram, StaticPaysWorstCaseIiDynamicPaysOnlyCollisions) {
  auto mt = test_rng(7);
  const auto next = [&mt] { return mt.next(); };
  // Fully hot trace: every update hits bin 0, so every dynamic issue
  // after the first collides with the window.
  const HistogramTrace trace = make_histogram_trace(512, 16, 1.0f, next);

  HistogramConfig cfg;
  cfg.num_bins = 16;
  cfg.mode = SchedulingMode::kStatic;
  const HistogramOutput st = run_histogram(cfg, trace.addrs, trace.weights);
  cfg.mode = SchedulingMode::kDynamic;
  const HistogramOutput dyn = run_histogram(cfg, trace.addrs, trace.weights);

  // Static: the scheduler spaces every update by chain_latency (the
  // final update's spacing is not charged — input is exhausted).
  EXPECT_GE(st.stats.hazard_stall_cycles,
            (trace.addrs.size() - 1) * (cfg.chain_latency - 1));
  EXPECT_LE(st.stats.hazard_stall_cycles,
            trace.addrs.size() * (cfg.chain_latency - 1));
  EXPECT_EQ(st.stats.forwarded, 0u);
  EXPECT_GT(st.stats.achieved_ii(),
            static_cast<double>(cfg.chain_latency) - 0.1);

  // Dynamic: forwarding turns each real collision into forward_stall
  // bubbles; even the all-colliding trace beats static because
  // forward_stall < chain_latency.
  EXPECT_GT(dyn.stats.forwarded, 0u);
  EXPECT_GE(dyn.stats.hazard_stall_cycles,
            (dyn.stats.forwarded - 1) * cfg.forward_stall);
  EXPECT_LE(dyn.stats.hazard_stall_cycles,
            dyn.stats.forwarded * cfg.forward_stall);
  EXPECT_LT(dyn.stats.cycles, st.stats.cycles);
}

TEST(Histogram, CollisionFreeTraceRunsAtIiOneUnderDynamic) {
  // Addresses strided wider than the in-flight window never collide.
  std::vector<std::uint32_t> addrs;
  std::vector<float> weights;
  for (std::uint32_t i = 0; i < 256; ++i) {
    addrs.push_back(i % 64);
    weights.push_back(1.0f);
  }
  HistogramConfig cfg;
  cfg.num_bins = 64;
  cfg.mode = SchedulingMode::kDynamic;
  const HistogramOutput out = run_histogram(cfg, addrs, weights);
  EXPECT_EQ(out.stats.forwarded, 0u);
  EXPECT_EQ(out.stats.hazard_stall_cycles, 0u);
  // II approaches 1 (the pipe fill is the only overhead).
  EXPECT_LT(out.stats.achieved_ii(), 1.2);
}

// ---------------------------------------------------------------------
// SpMV
// ---------------------------------------------------------------------

TEST(Spmv, BothModesMatchTheOracleBitExactly) {
  auto mt = test_rng(21);
  const auto next = [&mt] { return mt.next(); };
  const CsrMatrix m = make_spmv_matrix(128, 128, 0, 12, next);
  const std::vector<float> x = make_dense_vector(128, next);
  const std::vector<float> oracle = spmv_oracle(m, x);
  for (const SchedulingMode mode :
       {SchedulingMode::kStatic, SchedulingMode::kDynamic}) {
    SpmvConfig cfg;
    cfg.mode = mode;
    const SpmvOutput out = run_spmv(cfg, m, x);
    ASSERT_EQ(out.y.size(), oracle.size());
    for (std::size_t r = 0; r < oracle.size(); ++r) {
      EXPECT_EQ(out.y[r], oracle[r]) << "row " << r << " mode="
                                     << to_string(mode);
    }
  }
}

TEST(Spmv, EmptyRowsAndEmptyMatrixAreHandled) {
  CsrMatrix m;
  m.rows = 3;
  m.cols = 3;
  m.row_ptr = {0, 0, 2, 2};  // rows 0 and 2 empty
  m.col_idx = {0, 2};
  m.values = {2.0f, 4.0f};
  const std::vector<float> x = {1.0f, 10.0f, 100.0f};
  const std::vector<float> oracle = spmv_oracle(m, x);
  EXPECT_EQ(oracle[0], 0.0f);
  EXPECT_EQ(oracle[1], 402.0f);
  EXPECT_EQ(oracle[2], 0.0f);
  for (const SchedulingMode mode :
       {SchedulingMode::kStatic, SchedulingMode::kDynamic}) {
    SpmvConfig cfg;
    cfg.mode = mode;
    const SpmvOutput out = run_spmv(cfg, m, x);
    EXPECT_EQ(out.y, oracle);
  }
}

TEST(Spmv, DynamicStreamsRowsFasterThanStatic) {
  auto mt = test_rng(33);
  const auto next = [&mt] { return mt.next(); };
  // Short rows are static scheduling's worst case: it drains the MAC
  // pipeline at every row boundary.
  const CsrMatrix m = make_spmv_matrix(256, 256, 1, 3, next);
  const std::vector<float> x = make_dense_vector(256, next);
  SpmvConfig cfg;
  cfg.mode = SchedulingMode::kStatic;
  const SpmvOutput st = run_spmv(cfg, m, x);
  cfg.mode = SchedulingMode::kDynamic;
  const SpmvOutput dyn = run_spmv(cfg, m, x);
  EXPECT_LT(dyn.stats.cycles, st.stats.cycles);
  EXPECT_GT(st.stats.pipe_empty_stall_cycles,
            dyn.stats.pipe_empty_stall_cycles);
}

// ---------------------------------------------------------------------
// Maximal matching
// ---------------------------------------------------------------------

void expect_valid_matching(const EdgeList& g, const MatchingOutput& out) {
  // Symmetry: match[u] == v implies match[v] == u.
  std::uint32_t pairs = 0;
  for (std::uint32_t a = 0; a < g.num_vertices; ++a) {
    const std::int32_t b = out.match[a];
    if (b < 0) continue;
    ASSERT_LT(static_cast<std::uint32_t>(b), g.num_vertices);
    EXPECT_EQ(out.match[static_cast<std::uint32_t>(b)],
              static_cast<std::int32_t>(a));
    if (static_cast<std::uint32_t>(b) > a) ++pairs;
  }
  EXPECT_EQ(pairs, out.pairs);
}

TEST(Matching, BothModesMatchTheOracleBitExactly) {
  auto mt = test_rng(55);
  const auto next = [&mt] { return mt.next(); };
  const EdgeList g = make_edge_list(200, 600, next);
  const MatchingOutput oracle = matching_oracle(g);
  expect_valid_matching(g, oracle);
  for (const SchedulingMode mode :
       {SchedulingMode::kStatic, SchedulingMode::kDynamic}) {
    MatchingConfig cfg;
    cfg.mode = mode;
    const MatchingOutput out = run_matching(cfg, g);
    EXPECT_EQ(out.match, oracle.match) << to_string(mode);
    EXPECT_EQ(out.pairs, oracle.pairs);
    expect_valid_matching(g, out);
  }
}

TEST(Matching, QuotaExitMatchesOracleDespiteOverrunIterations) {
  auto mt = test_rng(77);
  const auto next = [&mt] { return mt.next(); };
  const EdgeList g = make_edge_list(100, 400, next);
  const MatchingOutput full = matching_oracle(g);
  ASSERT_GT(full.pairs, 4u);
  const std::uint32_t quota = full.pairs / 2;
  const MatchingOutput oracle = matching_oracle(g, quota);
  EXPECT_EQ(oracle.pairs, quota);
  for (const unsigned break_id : {0u, 2u}) {
    for (const SchedulingMode mode :
         {SchedulingMode::kStatic, SchedulingMode::kDynamic}) {
      MatchingConfig cfg;
      cfg.mode = mode;
      cfg.target_pairs = quota;
      cfg.break_id = break_id;
      const MatchingOutput out = run_matching(cfg, g);
      // The delayed exit may EXAMINE extra edges, but the guarded
      // write means it can never TAKE one — results are identical.
      EXPECT_EQ(out.match, oracle.match)
          << "break_id=" << break_id << " mode=" << to_string(mode);
      EXPECT_EQ(out.pairs, quota);
      EXPECT_GE(out.edges_examined, oracle.edges_examined);
      EXPECT_LE(out.edges_examined,
                oracle.edges_examined + break_id + 1);
    }
  }
}

TEST(Matching, DynamicSkipsRetireCheaply) {
  // A star graph: after the first edge is taken, every later edge
  // shares the hub and is skipped. Dynamic retires those skips at
  // II=1; static still pays chain_latency for each.
  EdgeList g;
  g.num_vertices = 64;
  for (std::uint32_t i = 1; i < 64; ++i) {
    g.u.push_back(0);
    g.v.push_back(i);
  }
  MatchingConfig cfg;
  cfg.mode = SchedulingMode::kStatic;
  const MatchingOutput st = run_matching(cfg, g);
  cfg.mode = SchedulingMode::kDynamic;
  const MatchingOutput dyn = run_matching(cfg, g);
  EXPECT_EQ(st.pairs, 1u);
  EXPECT_EQ(dyn.pairs, 1u);
  EXPECT_GT(dyn.stats.skipped, 0u);
  EXPECT_LT(dyn.stats.cycles, st.stats.cycles);
}

TEST(Matching, SelfLoopsAreNeverTaken) {
  EdgeList g;
  g.num_vertices = 4;
  g.u = {1, 1, 2};
  g.v = {1, 2, 3};  // edge 0 is a self-loop
  const MatchingOutput oracle = matching_oracle(g);
  EXPECT_EQ(oracle.match[1], 2);
  EXPECT_EQ(oracle.match[2], 1);
  EXPECT_EQ(oracle.match[0], -1);
  for (const SchedulingMode mode :
       {SchedulingMode::kStatic, SchedulingMode::kDynamic}) {
    MatchingConfig cfg;
    cfg.mode = mode;
    EXPECT_EQ(run_matching(cfg, g).match, oracle.match);
  }
}

// ---------------------------------------------------------------------
// Trace generators: fixed draw counts (the serve layer budgets
// substream consumption on these)
// ---------------------------------------------------------------------

TEST(TraceGenerators, ConsumeAFixedNumberOfDraws) {
  std::uint64_t draws = 0;
  auto mt = test_rng(99);
  const auto counted = [&] {
    ++draws;
    return mt.next();
  };
  make_histogram_trace(100, 32, 0.5f, counted);
  EXPECT_EQ(draws, 200u);  // 2 per update

  draws = 0;
  const CsrMatrix m = make_spmv_matrix(50, 50, 0, 4, counted);
  EXPECT_EQ(draws, 50u + 2u * m.nnz());  // 1 + 2·nnz per row

  draws = 0;
  make_edge_list(20, 75, counted);
  EXPECT_EQ(draws, 150u);  // 2 per edge
}

}  // namespace
}  // namespace dwi::workloads
