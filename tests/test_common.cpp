// Unit tests for src/common: error handling, bit utilities, ring
// buffer, units, and the table printer.
#include <gtest/gtest.h>

#include <sstream>

#include "common/bits.h"
#include "common/error.h"
#include "common/ring_buffer.h"
#include "common/table.h"
#include "common/units.h"

namespace dwi {
namespace {

TEST(Error, RequireThrowsWithMessage) {
  try {
    DWI_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(DWI_REQUIRE(true, "never"));
}

TEST(Bits, FloatRoundTrip) {
  for (float f : {0.0f, 1.0f, -1.5f, 3.14159f, 1e-30f, -1e30f}) {
    EXPECT_EQ(bits_to_float(float_to_bits(f)), f);
  }
}

TEST(Bits, FloatBitsKnownPattern) {
  EXPECT_EQ(float_to_bits(1.0f), 0x3f800000u);
  EXPECT_EQ(float_to_bits(-2.0f), 0xc0000000u);
}

TEST(Bits, CountLeadingZeros32) {
  EXPECT_EQ(count_leading_zeros(std::uint32_t{0}), 32);
  EXPECT_EQ(count_leading_zeros(std::uint32_t{1}), 31);
  EXPECT_EQ(count_leading_zeros(std::uint32_t{0x80000000u}), 0);
  EXPECT_EQ(count_leading_zeros(std::uint32_t{0x00010000u}), 15);
}

TEST(Bits, CeilDivAndRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(round_up(10, 16), 16);
  EXPECT_EQ(round_up(16, 16), 16);
}

TEST(Bits, PowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
}

TEST(Bits, Uint2FloatRange) {
  EXPECT_EQ(uint2float(0), 0.0f);
  EXPECT_LT(uint2float(0xffffffffu), 1.0f);
  EXPECT_GT(uint2float_open0(0), 0.0f);
  EXPECT_LT(uint2float_open0(0xffffffffu), 1.0f);
}

TEST(Bits, Uint2FloatMidpoint) {
  EXPECT_FLOAT_EQ(uint2float(0x80000000u), 0.5f);
}

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int> rb(4);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  rb.push(4);
  rb.push(5);
  rb.push(6);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_EQ(rb.pop(), 5);
  EXPECT_EQ(rb.pop(), 6);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, TryPushRespectsCapacity) {
  RingBuffer<int> rb(2);
  EXPECT_TRUE(rb.try_push(1));
  EXPECT_TRUE(rb.try_push(2));
  EXPECT_FALSE(rb.try_push(3));
  EXPECT_EQ(rb.size(), 2u);
}

TEST(RingBuffer, WrapAroundManyTimes) {
  RingBuffer<int> rb(3);
  for (int i = 0; i < 100; ++i) {
    rb.push(i);
    EXPECT_EQ(rb.pop(), i);
  }
}

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), Error);
}

TEST(Units, CyclesToTime) {
  Cycles c{200'000'000};
  EXPECT_DOUBLE_EQ(c.seconds_at(200e6), 1.0);
  EXPECT_DOUBLE_EQ(c.milliseconds_at(200e6), 1000.0);
}

TEST(Units, EnergyFromPowerAndTime) {
  const Joules e = Watts{50.0} * Seconds{2.0};
  EXPECT_DOUBLE_EQ(e.value, 100.0);
}

TEST(Units, BandwidthGbps) {
  EXPECT_NEAR(bandwidth_gbps(Bytes{2'500'000'000ull}, Seconds{0.701}), 3.566,
              0.01);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"Setup", "CPU", "FPGA"});
  t.add_row({"Config1", "3825", "701"});
  t.add_separator();
  t.add_row({"Config2", "3883", "701"});
  std::ostringstream os;
  t.render(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Config1"), std::string::npos);
  EXPECT_NE(s.find("| Setup"), std::string::npos);
  // All lines share the same width.
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "misaligned line: " << line;
  }
}

TEST(TextTable, CsvOutput) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.render_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, RowArityChecked) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::integer(42), "42");
  EXPECT_EQ(TextTable::percent(0.303, 1), "30.3%");
}

}  // namespace
}  // namespace dwi
