// Tests for the Marsaglia-Tsang gamma sampler: constants, the
// single-attempt primitive, the correction step, distributional
// correctness for shapes above and below 1 (parameterized over the
// paper's sector variances), and the rejection rates §IV-E reports.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "common/bits.h"
#include "rng/gamma.h"
#include "rng/mersenne_twister.h"
#include "stats/distributions.h"
#include "stats/ks_test.h"
#include "stats/moments.h"

namespace dwi::rng {
namespace {

TEST(GammaConstants, ShapeAboveOne) {
  const auto k = GammaConstants::make(2.5f);
  EXPECT_FALSE(k.boosted);
  EXPECT_FLOAT_EQ(k.d, 2.5f - 1.0f / 3.0f);
  EXPECT_FLOAT_EQ(k.c, 1.0f / std::sqrt(9.0f * k.d));
}

TEST(GammaConstants, ShapeBelowOneBoosts) {
  const auto k = GammaConstants::make(0.5f);
  EXPECT_TRUE(k.boosted);
  EXPECT_FLOAT_EQ(k.d, 1.5f - 1.0f / 3.0f);  // α_eff = α + 1
  EXPECT_FLOAT_EQ(k.inv_alpha, 2.0f);
}

TEST(GammaConstants, SectorParameterization) {
  const auto k = GammaConstants::from_sector_variance(1.39f);
  EXPECT_FLOAT_EQ(k.alpha, 1.0f / 1.39f);
  EXPECT_FLOAT_EQ(k.scale, 1.39f);
  EXPECT_TRUE(k.boosted);  // α ≈ 0.72 < 1
}

TEST(GammaConstants, RejectsNonPositive) {
  EXPECT_THROW(GammaConstants::make(0.0f), dwi::Error);
  EXPECT_THROW(GammaConstants::make(1.0f, -1.0f), dwi::Error);
  EXPECT_THROW(GammaConstants::from_sector_variance(0.0f), dwi::Error);
}

TEST(GammaAttempt, RejectsNegativeCube) {
  const auto k = GammaConstants::make(2.0f);
  // n0 far below -1/c makes (1 + c n0)³ ≤ 0.
  const float n0 = -2.0f / k.c;
  EXPECT_FALSE(gamma_attempt(n0, 0.5f, k).valid);
}

TEST(GammaAttempt, AcceptsCentralCandidate) {
  const auto k = GammaConstants::make(2.0f);
  // n0 = 0 → v = 1, squeeze accepts for u1 < 1.
  const auto a = gamma_attempt(0.0f, 0.5f, k);
  ASSERT_TRUE(a.valid);
  EXPECT_FLOAT_EQ(a.value, k.d);  // d·v·scale = d
}

TEST(GammaAttempt, ScaleMultipliesOutput) {
  const auto k1 = GammaConstants::make(2.0f, 1.0f);
  const auto k3 = GammaConstants::make(2.0f, 3.0f);
  const auto a1 = gamma_attempt(0.3f, 0.2f, k1);
  const auto a3 = gamma_attempt(0.3f, 0.2f, k3);
  ASSERT_TRUE(a1.valid && a3.valid);
  EXPECT_FLOAT_EQ(a3.value, 3.0f * a1.value);
}

TEST(GammaCorrect, PowerLawCorrection) {
  const auto k = GammaConstants::make(0.5f);  // inv_alpha = 2
  EXPECT_FLOAT_EQ(gamma_correct(4.0f, 0.5f, k), 4.0f * 0.25f);
  EXPECT_FLOAT_EQ(gamma_correct(4.0f, 1.0f, k), 4.0f);
}

// Parameterized distributional check across the paper's variance range
// (§IV-E sweeps v = 0.1 ... 100).
class GammaDistribution : public ::testing::TestWithParam<double> {};

TEST_P(GammaDistribution, SamplerMatchesAnalyticCdf) {
  const double v = GetParam();
  auto k = GammaConstants::from_sector_variance(static_cast<float>(v));
  GammaSampler sampler(k, NormalTransform::kMarsagliaBray);
  MersenneTwister mt(mt19937_params(), 313u);
  auto src = [&] { return mt.next(); };

  constexpr int kN = 120000;
  std::vector<double> xs(kN);
  stats::RunningMoments m;
  for (auto& x : xs) {
    x = static_cast<double>(sampler.sample(src));
    m.add(x);
  }
  // Unit mean, variance v (§II-D4).
  EXPECT_NEAR(m.mean(), 1.0, 0.03 * (1.0 + std::sqrt(v)));
  EXPECT_NEAR(m.variance() / v, 1.0, 0.1);

  const auto g = stats::GammaParams::from_sector_variance(v);
  const auto ks = stats::ks_test(std::span<const double>(xs),
                                 [&](double x) {
                                   return stats::gamma_cdf(x, g.shape, g.scale);
                                 });
  EXPECT_GT(ks.p_value, 1e-4) << "v=" << v << " KS D=" << ks.statistic;
}

INSTANTIATE_TEST_SUITE_P(SectorVariances, GammaDistribution,
                         ::testing::Values(0.1, 0.3, 1.39, 10.0));

TEST(GammaSampler, ExtremeVarianceMomentsOnly) {
  // v = 100 → α = 0.01: roughly a third of the distribution's mass lies
  // below the smallest positive float after the U^{1/α} = U^100
  // correction, so a KS test against the analytic CDF cannot pass in
  // single precision (the paper's FPGA kernel shares this limit — it
  // also emits single-precision outputs). Mean and variance remain
  // correct because the affected values are ≈ 0; validate those.
  auto k = GammaConstants::from_sector_variance(100.0f);
  GammaSampler sampler(k, NormalTransform::kMarsagliaBray);
  MersenneTwister mt(mt19937_params(), 424u);
  auto src = [&] { return mt.next(); };
  stats::RunningMoments m;
  for (int i = 0; i < 400000; ++i) {
    m.add(static_cast<double>(sampler.sample(src)));
  }
  EXPECT_NEAR(m.mean(), 1.0, 0.15);
  EXPECT_NEAR(m.variance() / 100.0, 1.0, 0.25);
}

TEST(GammaSampler, IcdfTransformAlsoCorrect) {
  auto k = GammaConstants::from_sector_variance(1.39f);
  GammaSampler sampler(k, NormalTransform::kIcdfCuda);
  MersenneTwister mt(mt19937_params(), 515u);
  auto src = [&] { return mt.next(); };
  std::vector<double> xs(80000);
  for (auto& x : xs) x = static_cast<double>(sampler.sample(src));
  const auto g = stats::GammaParams::from_sector_variance(1.39);
  const auto ks = stats::ks_test(std::span<const double>(xs),
                                 [&](double x) {
                                   return stats::gamma_cdf(x, g.shape, g.scale);
                                 });
  EXPECT_GT(ks.p_value, 1e-4) << "KS D=" << ks.statistic;
}

TEST(GammaSampler, ShapeAboveOneNoCorrection) {
  // v = 0.5 → α = 2 > 1: no correction path.
  auto k = GammaConstants::from_sector_variance(0.5f);
  EXPECT_FALSE(k.boosted);
  GammaSampler sampler(k, NormalTransform::kMarsagliaBray);
  MersenneTwister mt(mt19937_params(), 616u);
  auto src = [&] { return mt.next(); };
  stats::RunningMoments m;
  for (int i = 0; i < 50000; ++i) {
    m.add(static_cast<double>(sampler.sample(src)));
  }
  EXPECT_NEAR(m.mean(), 1.0, 0.02);
  EXPECT_NEAR(m.variance(), 0.5, 0.03);
}

TEST(GammaSampler, RejectionRateMarsagliaBray) {
  // §IV-E: with Marsaglia-Bray the combined rejection rate is ~30 % for
  // v = 1.39 and stays within ~[0.20, 0.40] across the variance sweep.
  auto k = GammaConstants::from_sector_variance(1.39f);
  GammaSampler sampler(k, NormalTransform::kMarsagliaBray);
  MersenneTwister mt(mt19937_params(), 717u);
  auto src = [&] { return mt.next(); };
  for (int i = 0; i < 100000; ++i) (void)sampler.sample(src);
  EXPECT_GT(sampler.rejection_rate(), 0.20);
  EXPECT_LT(sampler.rejection_rate(), 0.40);
}

TEST(GammaSampler, RejectionRateIcdfMuchLower) {
  // §IV-E: ICDF configs reject only at the gamma stage (~7 %).
  auto k = GammaConstants::from_sector_variance(1.39f);
  GammaSampler mb(k, NormalTransform::kMarsagliaBray);
  GammaSampler icdf(k, NormalTransform::kIcdfCuda);
  MersenneTwister mt(mt19937_params(), 818u);
  auto src = [&] { return mt.next(); };
  for (int i = 0; i < 60000; ++i) {
    (void)mb.sample(src);
    (void)icdf.sample(src);
  }
  EXPECT_LT(icdf.rejection_rate(), 0.15);
  EXPECT_LT(icdf.rejection_rate(), mb.rejection_rate());
}

TEST(GammaReference, MomentsAndKs) {
  GammaReference ref(1.0 / 1.39, 1.39);
  std::vector<double> xs(100000);
  stats::RunningMoments m;
  for (auto& x : xs) {
    x = ref.sample();
    m.add(x);
  }
  EXPECT_NEAR(m.mean(), 1.0, 0.02);
  EXPECT_NEAR(m.variance(), 1.39, 0.06);
  const auto ks = stats::ks_test(std::span<const double>(xs),
                                 [](double x) {
                                   return stats::gamma_cdf(x, 1.0 / 1.39, 1.39);
                                 });
  EXPECT_GT(ks.p_value, 1e-4);
}

TEST(GammaReference, AgreesWithFloatSampler) {
  // Two independent implementations must produce KS-compatible samples
  // (two-sample comparison via CDF evaluation on the analytic gamma).
  GammaReference ref(1.0 / 1.39, 1.39);
  auto k = GammaConstants::from_sector_variance(1.39f);
  GammaSampler sampler(k, NormalTransform::kMarsagliaBray);
  MersenneTwister mt(mt19937_params(), 919u);
  auto src = [&] { return mt.next(); };

  stats::RunningMoments a;
  stats::RunningMoments b;
  for (int i = 0; i < 80000; ++i) {
    a.add(ref.sample());
    b.add(static_cast<double>(sampler.sample(src)));
  }
  EXPECT_NEAR(a.mean(), b.mean(), 0.04);
  EXPECT_NEAR(a.variance(), b.variance(), 0.15);
  EXPECT_NEAR(a.skewness(), b.skewness(), 0.3);
}

}  // namespace
}  // namespace dwi::rng
