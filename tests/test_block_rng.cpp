// Block-vs-scalar equivalence suites for the hot-path overhaul: the
// block-generated RNG fast path, the tape-batched rejection pipeline
// and the cycle-skipping kernel simulation must all be bit-identical
// to their scalar / cycle-stepped reference formulations — these tests
// pin that contract on every layer.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/gamma_work_item.h"
#include "fpga/kernel_sim.h"
#include "rng/configs.h"
#include "rng/gamma.h"
#include "rng/jump.h"
#include "rng/mersenne_twister.h"
#include "rng/normal.h"

namespace dwi {
namespace {

// ---------------------------------------------------------------------
// generate_block == next() sequence, across block boundaries
// ---------------------------------------------------------------------

void expect_block_matches_next(const rng::MtParams& params,
                               std::uint32_t seed) {
  rng::MersenneTwister scalar(params, seed);
  rng::MersenneTwister blocked(params, seed);

  // Sizes chosen to start, straddle and end exactly on state-array
  // boundaries for both geometries (n = 624 and n = 17).
  const std::size_t sizes[] = {1, 3, 16, 17, 18, 623, 624, 625, 1000, 2};
  std::vector<std::uint32_t> buf;
  for (const std::size_t size : sizes) {
    buf.assign(size, 0);
    blocked.generate_block(buf.data(), size);
    for (std::size_t i = 0; i < size; ++i) {
      ASSERT_EQ(scalar.next(), buf[i]) << "size " << size << " pos " << i;
    }
  }
}

TEST(BlockRng, Mt19937GenerateBlockMatchesNext) {
  expect_block_matches_next(rng::mt19937_params(), 5489u);
  expect_block_matches_next(rng::mt19937_params(), 1u);
}

TEST(BlockRng, Mt521GenerateBlockMatchesNext) {
  expect_block_matches_next(rng::mt521_params(), 1u);
  expect_block_matches_next(rng::mt521_params(), 0xdeadbeefu);
}

TEST(BlockRng, GenerateBlockAfterJumpAhead) {
  // Jump-ahead substreams are constructed from raw states; the block
  // path must continue the recurrence identically from there.
  const rng::MtParams params = rng::mt521_params();
  const rng::SubstreamSplitter splitter(params, 42u, 1000);
  for (const std::uint64_t index : {0ull, 1ull, 7ull}) {
    rng::MersenneTwister scalar = splitter.stream(index);
    rng::MersenneTwister blocked = splitter.stream(index);
    std::uint32_t buf[200];
    blocked.generate_block(buf, 200);
    for (std::size_t i = 0; i < 200; ++i) {
      ASSERT_EQ(scalar.next(), buf[i]) << "stream " << index << " pos " << i;
    }
  }

  // make_jumped must agree with manually skipping on the block path.
  rng::MersenneTwister jumped = rng::make_jumped(params, 9u, 345);
  rng::MersenneTwister stepped(params, 9u);
  std::uint32_t sink[345];
  stepped.generate_block(sink, 345);
  std::uint32_t a[64], b[64];
  jumped.generate_block(a, 64);
  stepped.generate_block(b, 64);
  for (std::size_t i = 0; i < 64; ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(BlockRng, AdaptedEnabledBlockMatchesNext) {
  const rng::MtParams params = rng::mt521_params();
  rng::AdaptedMersenneTwister scalar(params, 7u);
  rng::AdaptedMersenneTwister blocked(params, 7u);

  // Interleave disabled peeks into the scalar twin exactly as the
  // pipeline would; they must not perturb the committed stream.
  std::uint32_t buf[100];
  blocked.generate_block(buf, 100);
  for (std::size_t i = 0; i < 100; ++i) {
    if (i % 3 == 0) {
      const std::uint32_t peek = scalar.next(false);
      ASSERT_EQ(peek, scalar.next(false));  // peeks are idempotent
    }
    ASSERT_EQ(scalar.next(true), buf[i]) << "pos " << i;
  }
  ASSERT_EQ(scalar.committed_steps(), blocked.committed_steps());
}

// ---------------------------------------------------------------------
// GammaSampler::sample_block == repeated sample(), draw-for-draw
// ---------------------------------------------------------------------

TEST(BlockRng, SamplerBlockMatchesScalar) {
  for (const float variance : {1.39f, 0.5f}) {
    for (const auto transform : {rng::NormalTransform::kMarsagliaBray,
                                 rng::NormalTransform::kIcdfBitwise,
                                 rng::NormalTransform::kIcdfCuda}) {
      const auto k = rng::GammaConstants::from_sector_variance(variance);
      rng::GammaSampler scalar(k, transform);
      rng::GammaSampler blocked(k, transform);

      rng::MersenneTwister mt_scalar(rng::mt19937_params(), 123u);
      rng::MersenneTwister mt_block(rng::mt19937_params(), 123u);

      constexpr std::size_t kCount = 4000;
      std::vector<float> a(kCount), b(kCount);
      for (std::size_t i = 0; i < kCount; ++i) {
        a[i] = scalar.sample([&] { return mt_scalar.next(); });
      }
      blocked.sample_block(mt_block, b.data(), kCount);

      ASSERT_EQ(a, b) << "variance " << variance;
      EXPECT_EQ(scalar.attempts(), blocked.attempts());
      EXPECT_EQ(scalar.accepted(), blocked.accepted());
    }
  }
}

TEST(BlockRng, PhiloxSamplerBlockIsPrefixStableAndDeterministic) {
  // sample_block(Philox&) defines its own deterministic attempt order:
  // out[] must be a prefix of one infinite per-stream tape, so asking
  // for more samples never changes the ones already produced, and the
  // result is a pure function of the Philox key/position.
  for (const float variance : {1.39f, 0.5f}) {
    for (const auto transform : {rng::NormalTransform::kMarsagliaBray,
                                 rng::NormalTransform::kIcdfBitwise,
                                 rng::NormalTransform::kIcdfCuda}) {
      const auto k = rng::GammaConstants::from_sector_variance(variance);

      std::vector<float> small(700), large(4000), again(4000);
      {
        rng::GammaSampler s(k, transform);
        rng::Philox px(2024u, 9);
        s.sample_block(px, small.data(), small.size());
      }
      {
        rng::GammaSampler s(k, transform);
        rng::Philox px(2024u, 9);
        s.sample_block(px, large.data(), large.size());
      }
      {
        rng::GammaSampler s(k, transform);
        rng::Philox px(2024u, 9);
        s.sample_block(px, again.data(), again.size());
      }
      ASSERT_EQ(large, again) << "variance " << variance;
      ASSERT_TRUE(std::equal(small.begin(), small.end(), large.begin()))
          << "variance " << variance << ": short request is not a prefix "
          << "of the long one";
    }
  }
}

TEST(BlockRng, PhiloxSamplerStatsAreConsistent) {
  const auto k = rng::GammaConstants::from_sector_variance(1.39f);
  rng::GammaSampler s(k, rng::NormalTransform::kMarsagliaBray);
  rng::Philox px(7u, 0);
  std::vector<float> out(5000);
  s.sample_block(px, out.data(), out.size());
  EXPECT_GE(s.accepted(), out.size());
  EXPECT_GT(s.attempts(), s.accepted());
  for (const float v : out) ASSERT_GT(v, 0.0f);
}

// ---------------------------------------------------------------------
// Tape-batched GammaWorkItem == scalar Listing 2 path, call-for-call
// ---------------------------------------------------------------------

struct WorkItemRun {
  std::vector<std::uint8_t> flags;  ///< produce() return per call
  std::vector<float> values;
  std::uint64_t iterations = 0;
  std::uint64_t outputs = 0;
};

WorkItemRun run_work_item(const core::GammaWorkItemConfig& cfg) {
  core::GammaWorkItem wi(cfg);
  WorkItemRun run;
  // Call produce() past finish to also pin the finished() transition.
  std::uint64_t guard = 0;
  while (!wi.finished()) {
    float v = 0.0f;
    const bool ok = wi.produce(&v);
    if (wi.finished()) break;  // the finishing call performs no iteration
    run.flags.push_back(ok ? 1 : 0);
    if (ok) run.values.push_back(v);
    if (++guard > std::uint64_t{10'000'000}) {
      ADD_FAILURE() << "runaway work-item";
      break;
    }
  }
  run.iterations = wi.iterations();
  run.outputs = wi.outputs();
  return run;
}

TEST(BatchedWorkItem, MatchesScalarPathAllConfigs) {
  for (const auto id : {rng::ConfigId::kConfig1, rng::ConfigId::kConfig2,
                        rng::ConfigId::kConfig3, rng::ConfigId::kConfig4}) {
    for (const std::uint32_t batch : {4u, 97u, 2048u}) {
      core::GammaWorkItemConfig scalar_cfg;
      scalar_cfg.app = rng::config(id);
      scalar_cfg.sector_variances = {1.39f, 0.5f, 2.0f, 1.0f};
      scalar_cfg.outputs_per_sector = 96;
      scalar_cfg.break_id = 2;
      scalar_cfg.work_item_id = 3;
      scalar_cfg.seed = 11;
      scalar_cfg.batch_iterations = 1;  // scalar reference path

      core::GammaWorkItemConfig batched_cfg = scalar_cfg;
      batched_cfg.batch_iterations = batch;

      const WorkItemRun a = run_work_item(scalar_cfg);
      const WorkItemRun b = run_work_item(batched_cfg);

      ASSERT_EQ(a.flags, b.flags)
          << "config " << static_cast<int>(id) << " batch " << batch;
      ASSERT_EQ(a.values, b.values)
          << "config " << static_cast<int>(id) << " batch " << batch;
      EXPECT_EQ(a.iterations, b.iterations);
      EXPECT_EQ(a.outputs, b.outputs);
    }
  }
}

TEST(BatchedWorkItem, MatchesScalarPathJumpAhead) {
  core::GammaWorkItemConfig scalar_cfg;
  scalar_cfg.app = rng::config(rng::ConfigId::kConfig2);  // MT(521)
  scalar_cfg.sector_variances = {1.39f, 1.39f};
  scalar_cfg.outputs_per_sector = 128;
  scalar_cfg.break_id = 0;
  scalar_cfg.work_item_id = 1;
  scalar_cfg.seed = 5;
  scalar_cfg.stream_strategy = core::StreamStrategy::kJumpAhead;
  scalar_cfg.batch_iterations = 1;

  core::GammaWorkItemConfig batched_cfg = scalar_cfg;
  batched_cfg.batch_iterations = 512;

  const WorkItemRun a = run_work_item(scalar_cfg);
  const WorkItemRun b = run_work_item(batched_cfg);
  ASSERT_EQ(a.flags, b.flags);
  ASSERT_EQ(a.values, b.values);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(BatchedWorkItem, MatchesScalarPathCounterBased) {
  // The Philox-backed strategy must preserve the same batching
  // invariant as the MT strategies: the tape-batched path replays the
  // scalar Listing 2 control flow bit-for-bit.
  for (const auto id : {rng::ConfigId::kConfig2, rng::ConfigId::kConfig3}) {
    core::GammaWorkItemConfig scalar_cfg;
    scalar_cfg.app = rng::config(id);
    scalar_cfg.sector_variances = {1.39f, 0.5f, 2.0f};
    scalar_cfg.outputs_per_sector = 96;
    scalar_cfg.break_id = 1;
    scalar_cfg.work_item_id = 2;
    scalar_cfg.seed = 77;
    scalar_cfg.stream_strategy = core::StreamStrategy::kCounterBased;
    scalar_cfg.batch_iterations = 1;

    core::GammaWorkItemConfig batched_cfg = scalar_cfg;
    batched_cfg.batch_iterations = 2048;

    const WorkItemRun a = run_work_item(scalar_cfg);
    const WorkItemRun b = run_work_item(batched_cfg);
    ASSERT_EQ(a.flags, b.flags) << "config " << static_cast<int>(id);
    ASSERT_EQ(a.values, b.values) << "config " << static_cast<int>(id);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.outputs, b.outputs);
  }
}

TEST(BatchedWorkItem, CounterBasedWorkItemsAreDecorrelated) {
  // Distinct work-item ids own disjoint counter windows; their outputs
  // must differ (structural non-overlap, not just statistically).
  core::GammaWorkItemConfig cfg;
  cfg.app = rng::config(rng::ConfigId::kConfig2);
  cfg.sector_variances = {1.39f};
  cfg.outputs_per_sector = 64;
  cfg.break_id = 0;
  cfg.seed = 5;
  cfg.stream_strategy = core::StreamStrategy::kCounterBased;
  cfg.work_item_id = 0;
  const WorkItemRun a = run_work_item(cfg);
  cfg.work_item_id = 1;
  const WorkItemRun b = run_work_item(cfg);
  EXPECT_NE(a.values, b.values);
}

// ---------------------------------------------------------------------
// Cycle-skipping KernelSim == cycle-stepped engine
// ---------------------------------------------------------------------

void expect_engines_match(fpga::KernelSimConfig cfg,
                          const fpga::ProducerFactory& make_producer) {
  fpga::ScheduleTrace stepped_trace, skipped_trace;

  fpga::KernelSimConfig stepped = cfg;
  stepped.cycle_skipping = false;
  stepped.trace = &stepped_trace;
  const fpga::KernelSimResult a =
      fpga::simulate_kernel(stepped, make_producer);

  fpga::KernelSimConfig skipped = cfg;
  skipped.cycle_skipping = true;
  skipped.trace = &skipped_trace;
  const fpga::KernelSimResult b =
      fpga::simulate_kernel(skipped, make_producer);

  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.compute_stall_cycles, b.compute_stall_cycles);
  EXPECT_EQ(a.bursts, b.bursts);
  EXPECT_EQ(a.channel_bytes_per_cycle, b.channel_bytes_per_cycle);
  EXPECT_EQ(a.outputs_data, b.outputs_data);
  ASSERT_EQ(stepped_trace.work_items.size(), skipped_trace.work_items.size());
  for (std::size_t w = 0; w < stepped_trace.work_items.size(); ++w) {
    EXPECT_EQ(stepped_trace.work_items[w], skipped_trace.work_items[w])
        << "work-item " << w;
  }
  EXPECT_EQ(stepped_trace.channel, skipped_trace.channel);
}

TEST(CycleSkip, MatchesSteppedOnFig2Fig3Scenario) {
  // The exact configuration bench/fig2_fig3_schedules renders.
  fpga::KernelSimConfig cfg;
  cfg.work_items = 4;
  cfg.outputs_per_work_item = 192;
  cfg.burst_beats = 2;
  cfg.stream_depth = 8;
  cfg.channel.turnaround_cycles = 6;
  expect_engines_match(cfg, [](unsigned w) {
    return std::make_unique<fpga::BernoulliProducer>(0.766, 33 + w);
  });
}

TEST(CycleSkip, MatchesSteppedWithIIRefreshAndMultiChannel) {
  fpga::KernelSimConfig cfg;
  cfg.work_items = 5;
  cfg.outputs_per_work_item = 300;
  cfg.initiation_interval = 3;  // '-' countdown cycles get skipped
  cfg.burst_beats = 4;
  cfg.stream_depth = 16;
  cfg.memory_channels = 2;
  cfg.transfer_double_buffered = false;
  cfg.channel.turnaround_cycles = 41;
  cfg.channel.refresh_interval_cycles = 97;  // awkward boundary stride
  cfg.channel.refresh_cycles = 13;
  cfg.record_outputs = true;
  expect_engines_match(cfg, [](unsigned w) {
    return std::make_unique<fpga::BernoulliProducer>(0.5, 101 + w);
  });
}

TEST(CycleSkip, MatchesSteppedWithGammaProducers) {
  // Full stack: tape-batched work-items inside both sim engines.
  fpga::KernelSimConfig cfg;
  cfg.work_items = 3;
  cfg.outputs_per_work_item = 256;
  cfg.burst_beats = 2;
  cfg.stream_depth = 8;
  cfg.channel.turnaround_cycles = 12;
  cfg.record_outputs = true;
  expect_engines_match(cfg, [](unsigned w) {
    core::GammaWorkItemConfig wi_cfg;
    wi_cfg.app = rng::config(rng::ConfigId::kConfig2);
    wi_cfg.outputs_per_sector = 256;
    wi_cfg.work_item_id = w;
    wi_cfg.seed = 77;
    return std::make_unique<core::GammaWorkItem>(wi_cfg);
  });
}

}  // namespace
}  // namespace dwi
