// The paper's headline, as a cross-engine regression guard: "FPGAs can
// deliver up to 5.5x speedup" (abstract) — Config1 speedups of the
// cycle-level FPGA simulation over the SIMT estimates for CPU, GPU and
// Xeon Phi, within bands around Table III's 5.5x / 3.5x / 1.4x. Also
// the paper's loss cases: the FPGA must NOT win Config4 against GPU
// and PHI (0.8x / 0.7x) — a reproduction that wins everywhere would be
// wrong.
#include <gtest/gtest.h>

#include "core/fpga_app.h"
#include "rng/configs.h"
#include "simt/runtime_estimator.h"

namespace dwi {
namespace {

double fpga_ms(rng::ConfigId id) {
  core::FpgaWorkload w;
  w.scale_divisor = 2048;
  return core::run_fpga_application(rng::config(id), w).seconds_full * 1e3;
}

double simt_ms(simt::PlatformId pid, rng::ConfigId id) {
  simt::NdRangeWorkload w;
  const auto& cfg = rng::config(id);
  return simt::estimate_runtime(simt::platform(pid), cfg,
                                cfg.fixed_arch_transform, w)
             .seconds * 1e3;
}

TEST(Headline, Config1SpeedupsMatchTheAbstract) {
  const double fpga = fpga_ms(rng::ConfigId::kConfig1);
  const double vs_cpu = simt_ms(simt::PlatformId::kCpu,
                                rng::ConfigId::kConfig1) / fpga;
  const double vs_gpu = simt_ms(simt::PlatformId::kGpu,
                                rng::ConfigId::kConfig1) / fpga;
  const double vs_phi = simt_ms(simt::PlatformId::kPhi,
                                rng::ConfigId::kConfig1) / fpga;
  EXPECT_NEAR(vs_cpu, 5.5, 1.0);   // paper: 5.5x
  EXPECT_NEAR(vs_gpu, 3.5, 0.8);   // paper: 3.5x
  EXPECT_NEAR(vs_phi, 1.4, 0.3);   // paper: 1.4x
}

TEST(Headline, FpgaLosesWhereThePaperSaysItLoses) {
  // §IV-E: under Config4 the FPGA reaches only 0.8x of the GPU and
  // 0.7x of the PHI (memory-bound); and ~0.9x of PHI under Config3.
  const double fpga4 = fpga_ms(rng::ConfigId::kConfig4);
  EXPECT_LT(simt_ms(simt::PlatformId::kGpu, rng::ConfigId::kConfig4),
            fpga4);
  EXPECT_LT(simt_ms(simt::PlatformId::kPhi, rng::ConfigId::kConfig4),
            fpga4);
  const double fpga3 = fpga_ms(rng::ConfigId::kConfig3);
  EXPECT_LT(simt_ms(simt::PlatformId::kPhi, rng::ConfigId::kConfig3),
            fpga3);
  // ...but still beats the CPU there (paper: ~2x under Config3/4).
  EXPECT_GT(simt_ms(simt::PlatformId::kCpu, rng::ConfigId::kConfig4),
            fpga4);
}

TEST(Headline, FpgaColumnIsConfigInsensitive) {
  // Table III: identical FPGA runtimes within each transform pair —
  // the MT period does not move the FPGA (unlike the GPU).
  EXPECT_NEAR(fpga_ms(rng::ConfigId::kConfig1) /
                  fpga_ms(rng::ConfigId::kConfig2),
              1.0, 0.02);
  EXPECT_NEAR(fpga_ms(rng::ConfigId::kConfig3) /
                  fpga_ms(rng::ConfigId::kConfig4),
              1.0, 0.02);
}

}  // namespace
}  // namespace dwi
