// Tests for the mini-OpenCL runtime (event timeline, PCIe model,
// buffer combining) and the power/energy module (trace synthesis,
// idle subtraction, the §IV-F protocol, Fig 9 orderings).
#include <gtest/gtest.h>

#include <cmath>

#include "minicl/devices.h"
#include "minicl/runtime.h"
#include "power/energy_protocol.h"
#include "power/trace.h"

namespace dwi {
namespace {

using minicl::BufferCombining;
using minicl::CommandQueue;
using minicl::KernelLaunch;
using minicl::PcieModel;

KernelLaunch small_launch(rng::ConfigId id, rng::NormalTransform t) {
  KernelLaunch l;
  l.config = rng::config(id);
  l.transform = t;
  l.total_outputs = 1ull << 22;  // small for test speed
  l.global_size = 16384;
  return l;
}

TEST(MiniCl, DeviceDiscovery) {
  const auto devices = minicl::default_devices();
  ASSERT_EQ(devices.size(), 4u);
  EXPECT_NE(minicl::find_device("CPU"), nullptr);
  EXPECT_NE(minicl::find_device("GPU"), nullptr);
  EXPECT_NE(minicl::find_device("PHI"), nullptr);
  EXPECT_NE(minicl::find_device("FPGA"), nullptr);
  EXPECT_THROW(minicl::find_device("TPU"), Error);
}

TEST(MiniCl, InOrderQueueTimeline) {
  auto dev = minicl::find_device("PHI");
  CommandQueue q(*dev);
  const auto l = small_launch(rng::ConfigId::kConfig2,
                              rng::NormalTransform::kMarsagliaBray);
  auto e1 = q.enqueue_kernel(l);
  auto e2 = q.enqueue_kernel(l);
  EXPECT_DOUBLE_EQ(e1->started_at(), 0.0);
  EXPECT_GT(e1->finished_at(), 0.0);
  EXPECT_DOUBLE_EQ(e2->started_at(), e1->finished_at());
  EXPECT_DOUBLE_EQ(q.finish(), e2->finished_at());
}

TEST(MiniCl, EventStatusTransitions) {
  auto dev = minicl::find_device("PHI");
  CommandQueue q(*dev);
  auto e = q.enqueue_kernel(small_launch(
      rng::ConfigId::kConfig2, rng::NormalTransform::kMarsagliaBray));
  using S = minicl::Event::Status;
  EXPECT_EQ(e->status_at(e->started_at() + e->duration() / 2), S::kRunning);
  EXPECT_EQ(e->status_at(e->finished_at() + 1.0), S::kComplete);
}

TEST(MiniCl, PcieTransferModel) {
  PcieModel pcie;
  // 2.5 GB at 6 GB/s ≈ 417 ms plus one request latency.
  const double t = pcie.transfer_seconds(2'500'000'000ull, 1);
  EXPECT_NEAR(t, 2.5e9 / 6.0e9 + 25e-6, 1e-6);
  // N requests add N latencies (host-level combining, §III-E1).
  const double t8 = pcie.transfer_seconds(2'500'000'000ull, 8);
  EXPECT_NEAR(t8 - t, 7 * 25e-6, 1e-9);
}

TEST(MiniCl, BufferCombiningCosts) {
  // Device-level combining (one read) is never slower than host-level
  // (N reads) — the reason the paper chooses it (§III-E2).
  auto dev = minicl::find_device("FPGA");
  const std::uint64_t bytes = 100'000'000;
  CommandQueue q1(*dev);
  auto host_read =
      q1.enqueue_read(bytes, BufferCombining::kHostLevel, 6);
  CommandQueue q2(*dev);
  auto dev_read =
      q2.enqueue_read(bytes, BufferCombining::kDeviceLevel, 6);
  EXPECT_GT(host_read->duration(), dev_read->duration());
}

TEST(MiniCl, RepeatedLaunchesAreMemoizedConsistently) {
  // Identical launches must report identical profiles (deterministic
  // engines + the memoization that makes the Fig 8/9 protocols cheap),
  // and a different launch must actually re-simulate.
  auto dev = minicl::find_device("GPU");
  const auto l1 = small_launch(rng::ConfigId::kConfig2,
                               rng::NormalTransform::kMarsagliaBray);
  CommandQueue q(*dev);
  q.enqueue_kernel(l1);
  const double t1 = q.last_profile().kernel_seconds;
  q.enqueue_kernel(l1);
  EXPECT_DOUBLE_EQ(q.last_profile().kernel_seconds, t1);
  auto l2 = l1;
  l2.total_outputs *= 2;
  q.enqueue_kernel(l2);
  EXPECT_GT(q.last_profile().kernel_seconds, t1 * 1.5);
}

TEST(MiniCl, FpgaDeviceMatchesDirectRun) {
  auto dev = minicl::find_device("FPGA");
  KernelLaunch l;
  l.config = rng::config(rng::ConfigId::kConfig1);
  CommandQueue q(*dev);
  auto e = q.enqueue_kernel(l);
  EXPECT_NEAR(e->duration(), 0.71, 0.05);  // Table III: 701 ms
}

TEST(PowerTrace, IdleTraceIsFlat) {
  power::SystemPowerConfig cfg;
  cfg.noise_watts = 0.0;
  const auto trace = power::simulate_trace(cfg, {}, 30.0);
  ASSERT_EQ(trace.samples_watts.size(), 30u);
  for (double w : trace.samples_watts) EXPECT_DOUBLE_EQ(w, 204.0);
}

TEST(PowerTrace, ActivityAddsDynamicPower) {
  power::SystemPowerConfig cfg;
  cfg.noise_watts = 0.0;
  cfg.host_enqueue_watts = 0.0;
  cfg.cooling_gain = 0.0;
  const auto trace =
      power::simulate_trace(cfg, {{10.0, 20.0, 50.0}}, 30.0);
  EXPECT_DOUBLE_EQ(trace.samples_watts[5], 204.0);
  EXPECT_DOUBLE_EQ(trace.samples_watts[15], 254.0);
  EXPECT_DOUBLE_EQ(trace.samples_watts[25], 204.0);
}

TEST(PowerTrace, CoolingRampsWithLag) {
  power::SystemPowerConfig cfg;
  cfg.noise_watts = 0.0;
  cfg.host_enqueue_watts = 0.0;
  const auto trace =
      power::simulate_trace(cfg, {{0.0, 100.0, 100.0}}, 100.0);
  // Cooling approaches gain × dynamic asymptotically: later samples
  // exceed earlier ones, and the asymptote is 204 + 100 + 12.
  EXPECT_LT(trace.samples_watts[2], trace.samples_watts[50]);
  EXPECT_NEAR(trace.samples_watts[90], 204.0 + 100.0 + 12.0, 1.0);
}

TEST(PowerTrace, EnergyIntegration) {
  power::SystemPowerConfig cfg;
  cfg.noise_watts = 0.0;
  cfg.host_enqueue_watts = 0.0;
  cfg.cooling_gain = 0.0;
  const auto trace =
      power::simulate_trace(cfg, {{0.0, 50.0, 40.0}}, 50.0);
  const auto e = power::integrate_energy(trace, 0.0, 50.0);
  EXPECT_NEAR(e.value, (204.0 + 40.0) * 50.0, 1.0);
}

TEST(PowerTrace, DynamicEnergyDerivation) {
  // 100 s window, constant 40 W dynamic, kernels of 10 s each: the
  // §IV-F derivation must recover 400 J per invocation.
  power::SystemPowerConfig cfg;
  cfg.noise_watts = 0.0;
  cfg.host_enqueue_watts = 0.0;
  cfg.cooling_gain = 0.0;
  std::vector<power::ActivityInterval> activity;
  for (int i = 0; i < 12; ++i) {
    activity.push_back({i * 10.0, (i + 1) * 10.0, 40.0});
  }
  const auto trace = power::simulate_trace(cfg, activity, 120.0);
  const auto r = power::derive_dynamic_energy(cfg, trace, activity, 100.0);
  EXPECT_NEAR(r.invocations_in_window, 10.0, 1e-9);
  EXPECT_NEAR(r.per_invocation.value, 400.0, 2.0);
}

TEST(EnergyProtocol, RunsPast150Seconds) {
  auto dev = minicl::find_device("FPGA");
  const auto r = power::run_energy_protocol(
      *dev, small_launch(rng::ConfigId::kConfig1,
                         rng::NormalTransform::kMarsagliaBray));
  EXPECT_GE(r.trace.duration_s(), 150.0);
  EXPECT_GT(r.invocations, 100u);  // small launch → many repetitions
  EXPECT_GT(r.energy.per_invocation.value, 0.0);
  // Markers: first enqueue + the two window delimiters.
  ASSERT_EQ(r.trace.markers_s.size(), 3u);
  EXPECT_NEAR(r.trace.markers_s[2] - r.trace.markers_s[1], 100.0, 1e-9);
}

TEST(EnergyProtocol, Fig9OrderingsConfig1) {
  // Fig 9 / §IV-F: under Config1 the FPGA's dynamic energy per
  // invocation beats CPU by ~9.5x, GPU by ~7.9x, PHI by ~4.1x.
  KernelLaunch l;
  l.config = rng::config(rng::ConfigId::kConfig1);
  l.transform = rng::NormalTransform::kMarsagliaBray;

  auto energy = [&](const char* name) {
    auto dev = minicl::find_device(name);
    return power::run_energy_protocol(*dev, l).energy.per_invocation.value;
  };
  const double fpga = energy("FPGA");
  const double cpu = energy("CPU");
  const double gpu = energy("GPU");
  const double phi = energy("PHI");
  EXPECT_NEAR(cpu / fpga, 9.5, 2.4);
  EXPECT_NEAR(gpu / fpga, 7.9, 2.0);
  EXPECT_NEAR(phi / fpga, 4.1, 1.2);
}

TEST(EnergyProtocol, FpgaBestInAllConfigs) {
  // §IV-F: "The FPGA solution shows the best energy efficiency in all
  // cases."
  for (const auto& cfg : rng::all_configs()) {
    KernelLaunch l;
    l.config = cfg;
    l.transform = cfg.fixed_arch_transform;
    auto fpga = minicl::find_device("FPGA");
    KernelLaunch lf = l;
    const double e_fpga =
        power::run_energy_protocol(*fpga, lf).energy.per_invocation.value;
    for (const char* name : {"CPU", "GPU", "PHI"}) {
      auto dev = minicl::find_device(name);
      const double e =
          power::run_energy_protocol(*dev, l).energy.per_invocation.value;
      EXPECT_GT(e, e_fpga) << cfg.name << " on " << name;
    }
  }
}

}  // namespace
}  // namespace dwi
