// Bit-identity of the vectorized block kernels against their scalar
// oracles (the contract simd_kernels.h declares). Each kernel is
// checked two ways: the dispatched entry point against the scalar
// reference (meaningful on AVX2 hosts, trivially true elsewhere), and
// — when the AVX2 translation unit is compiled and the host supports
// it — the _avx2 variant directly, so a DWI_SIMD=scalar environment
// cannot silently skip the interesting comparison. Counts straddle
// vector-width boundaries (8/16-lane multiples ± 1) and the Philox
// kernel is driven across 32-bit counter-word carries, the case the
// vector path must hand back to the scalar oracle.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <iterator>
#include <vector>

#include "rng/gamma.h"
#include "rng/icdf_bitwise.h"
#include "rng/mersenne_twister.h"
#include "rng/philox.h"
#include "rng/simd_kernels.h"

namespace dwi::rng::simd {
namespace {

bool avx2_testable() {
#if defined(DWI_SIMD_AVX2) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// Deterministic raw-uniform fixture: full-range 32-bit words,
/// including the extremes the transforms special-case.
std::vector<std::uint32_t> uniform_words(std::size_t count,
                                         std::uint32_t seed) {
  Philox p(seed, 0);
  std::vector<std::uint32_t> out(count);
  p.generate_block(out.data(), count);
  // Plant boundary values at fixed slots.
  if (count >= 4) {
    out[0] = 0u;
    out[1] = 0xffffffffu;
    out[2] = 0x80000000u;
    out[3] = 1u;
  }
  return out;
}

const std::size_t kCounts[] = {1, 7, 8, 9, 16, 31, 255, 1024};

TEST(SimdKernels, ScalarLevelAlwaysAvailable) {
  EXPECT_NO_THROW((void)active_level());
  EXPECT_STREQ(to_string(Level::kScalar), "scalar");
}

TEST(SimdKernels, MbAttemptBitIdentical) {
  for (const std::size_t n : kCounts) {
    const auto ua = uniform_words(n, 1);
    const auto ub = uniform_words(n, 2);
    std::vector<float> v_ref(n), v_got(n);
    std::vector<std::uint8_t> ok_ref(n), ok_got(n);
    mb_attempt_block_scalar(ua.data(), ub.data(), n, v_ref.data(),
                            ok_ref.data());
    mb_attempt_block(ua.data(), ub.data(), n, v_got.data(), ok_got.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(ok_got[i], ok_ref[i]) << "n=" << n << " i=" << i;
      if (ok_ref[i]) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(v_got[i]),
                  std::bit_cast<std::uint32_t>(v_ref[i]))
            << "n=" << n << " i=" << i;
      }
    }
#if defined(DWI_SIMD_AVX2)
    if (avx2_testable()) {
      mb_attempt_block_avx2(ua.data(), ub.data(), n, v_got.data(),
                            ok_got.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(ok_got[i], ok_ref[i]);
        if (ok_ref[i]) {
          ASSERT_EQ(std::bit_cast<std::uint32_t>(v_got[i]),
                    std::bit_cast<std::uint32_t>(v_ref[i]));
        }
      }
    }
#endif
  }
}

TEST(SimdKernels, MbFinishBitIdentical) {
  for (const std::size_t n : kCounts) {
    // Pre-validated lanes: s strictly inside (0, 1).
    const auto words = uniform_words(n, 3);
    std::vector<float> s(n), n0(n);
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = (static_cast<float>(words[i] >> 8) + 1.0f) / 16777218.0f;
      n0[i] = static_cast<float>(static_cast<std::int32_t>(words[i])) *
              5.0e-10f;
    }
    std::vector<float> ref = n0, got = n0;
    mb_finish_block_scalar(ref.data(), s.data(), n);
    mb_finish_block(got.data(), s.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
                std::bit_cast<std::uint32_t>(ref[i]))
          << "n=" << n << " i=" << i;
    }
#if defined(DWI_SIMD_AVX2)
    if (avx2_testable()) {
      got = n0;
      mb_finish_block_avx2(got.data(), s.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
                  std::bit_cast<std::uint32_t>(ref[i]));
      }
    }
#endif
  }
}

TEST(SimdKernels, IcdfCudaBitIdentical) {
  for (const std::size_t n : kCounts) {
    const auto u = uniform_words(n, 4);
    std::vector<float> ref(n), got(n);
    icdf_cuda_block_scalar(u.data(), n, ref.data());
    icdf_cuda_block(u.data(), n, got.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
                std::bit_cast<std::uint32_t>(ref[i]))
          << "n=" << n << " i=" << i;
    }
#if defined(DWI_SIMD_AVX2)
    if (avx2_testable()) {
      icdf_cuda_block_avx2(u.data(), n, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
                  std::bit_cast<std::uint32_t>(ref[i]));
      }
    }
#endif
  }
}

TEST(SimdKernels, IcdfBitwiseBitIdentical) {
  // Integer datapath: check every octave depth the planted boundary
  // words reach, the invalid word (t_int == 0 after folding, i.e.
  // u = 0 and u = 0xffffffff), and both reflection halves.
  for (const std::size_t n : kCounts) {
    auto u = uniform_words(n, 11);
    const std::uint32_t planted[] = {0u, 0xffffffffu, 1u, 2u, 3u,
                                     0x7fffffffu, 0x80000000u, 0x80000001u,
                                     0x00000007u, 0xfffffff8u};
    for (std::size_t i = 0; i < n && i < std::size(planted); ++i) {
      u[n - 1 - i] = planted[i];
    }
    std::vector<float> ref(n), got(n);
    std::vector<std::uint8_t> ref_ok(n), got_ok(n);
    icdf_bitwise_block_scalar(u.data(), n, ref.data(), ref_ok.data());
    for (std::size_t i = 0; i < n; ++i) {
      const IcdfResult r = normal_icdf_bitwise(u[i]);
      ASSERT_EQ(std::bit_cast<std::uint32_t>(ref[i]),
                std::bit_cast<std::uint32_t>(r.value));
      ASSERT_EQ(ref_ok[i], r.valid ? 1 : 0);
    }
    icdf_bitwise_block(u.data(), n, got.data(), got_ok.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
                std::bit_cast<std::uint32_t>(ref[i]))
          << "n=" << n << " i=" << i << " u=" << u[i];
      ASSERT_EQ(got_ok[i], ref_ok[i]) << "n=" << n << " i=" << i;
    }
#if defined(DWI_SIMD_AVX2)
    if (avx2_testable()) {
      icdf_bitwise_block_avx2(u.data(), n, got.data(), got_ok.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
                  std::bit_cast<std::uint32_t>(ref[i]))
            << "n=" << n << " i=" << i << " u=" << u[i];
        ASSERT_EQ(got_ok[i], ref_ok[i]) << "n=" << n << " i=" << i;
      }
    }
#endif
  }
}

TEST(SimdKernels, GammaAttemptAndCorrectBitIdentical) {
  // Both the direct shape (α ≥ 1) and the boosted α < 1 path.
  for (const float alpha : {3.5f, 0.5f}) {
    const GammaConstants k = GammaConstants::make(alpha, 2.0f);
    for (const std::size_t n : kCounts) {
      const auto words = uniform_words(n, 5);
      const auto u1 = uniform_words(n, 6);
      const auto u2 = uniform_words(n, 7);
      std::vector<float> n0(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Normal-ish candidates spanning accept/reject/v<=0 regions.
        n0[i] = static_cast<float>(static_cast<std::int32_t>(words[i])) *
                2.5e-9f;
      }
      std::vector<float> v_ref(n), v_got(n);
      std::vector<std::uint8_t> ok_ref(n), ok_got(n);
      gamma_attempt_block_scalar(n0.data(), u1.data(), n, k, v_ref.data(),
                                 ok_ref.data());
      gamma_attempt_block(n0.data(), u1.data(), n, k, v_got.data(),
                          ok_got.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(ok_got[i], ok_ref[i]) << "alpha=" << alpha << " i=" << i;
        if (ok_ref[i]) {
          ASSERT_EQ(std::bit_cast<std::uint32_t>(v_got[i]),
                    std::bit_cast<std::uint32_t>(v_ref[i]));
        }
      }
      if (k.boosted) {
        // Correction over the accepted lanes (compacted).
        std::vector<float> g_ref, g_got;
        std::vector<std::uint32_t> u2c;
        for (std::size_t i = 0; i < n; ++i) {
          if (ok_ref[i]) {
            g_ref.push_back(v_ref[i]);
            u2c.push_back(u2[i]);
          }
        }
        g_got = g_ref;
        gamma_correct_block_scalar(g_ref.data(), u2c.data(), g_ref.size(), k);
        gamma_correct_block(g_got.data(), u2c.data(), g_got.size(), k);
        for (std::size_t i = 0; i < g_ref.size(); ++i) {
          ASSERT_EQ(std::bit_cast<std::uint32_t>(g_got[i]),
                    std::bit_cast<std::uint32_t>(g_ref[i]));
        }
#if defined(DWI_SIMD_AVX2)
        if (avx2_testable()) {
          auto g_avx = g_got;
          // Recompute from the same pre-correction values.
          for (std::size_t i = 0, j = 0; i < n; ++i) {
            if (ok_ref[i]) g_avx[j++] = v_ref[i];
          }
          gamma_correct_block_avx2(g_avx.data(), u2c.data(), g_avx.size(), k);
          for (std::size_t i = 0; i < g_ref.size(); ++i) {
            ASSERT_EQ(std::bit_cast<std::uint32_t>(g_avx[i]),
                      std::bit_cast<std::uint32_t>(g_ref[i]));
          }
        }
#endif
      }
#if defined(DWI_SIMD_AVX2)
      if (avx2_testable()) {
        gamma_attempt_block_avx2(n0.data(), u1.data(), n, k, v_got.data(),
                                 ok_got.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(ok_got[i], ok_ref[i]);
          if (ok_ref[i]) {
            ASSERT_EQ(std::bit_cast<std::uint32_t>(v_got[i]),
                      std::bit_cast<std::uint32_t>(v_ref[i]));
          }
        }
      }
#endif
    }
  }
}

TEST(SimdKernels, MtTemperBitIdentical) {
  for (const MtParams& p : {mt521_params(), mt19937_params()}) {
    for (const std::size_t n : kCounts) {
      const auto state = uniform_words(n, 8);
      std::vector<std::uint32_t> ref(n), got(n);
      mt_temper_block_scalar(state.data(), n, p, ref.data());
      mt_temper_block(state.data(), n, p, got.data());
      ASSERT_EQ(got, ref) << "n=" << n;
#if defined(DWI_SIMD_AVX2)
      if (avx2_testable()) {
        mt_temper_block_avx2(state.data(), n, p, got.data());
        ASSERT_EQ(got, ref) << "n=" << n;
      }
#endif
    }
  }
}

TEST(SimdKernels, MtTwistBitIdentical) {
  // The scalar oracle is itself checked against the classic
  // word-at-a-time recurrence, then the dispatched/AVX2 variants must
  // match it over several consecutive passes (in-place state carries
  // divergence forward, so multiple passes amplify any lane slip).
  MtParams tiny = mt521_params();
  tiny.n = 9;  // forces the AVX2 variant's scalar fallback (n - m < 8)
  for (const MtParams& p : {mt521_params(), mt19937_params(), tiny}) {
    const std::uint32_t lm =
        (p.r == 32) ? 0xffffffffu : ((std::uint32_t{1} << p.r) - 1);
    const std::uint32_t um = ~lm;
    auto ref = uniform_words(p.n, 12);
    auto via_dispatch = ref;
    auto via_avx2 = ref;
    for (int pass = 0; pass < 5; ++pass) {
      // Classic formulation with explicit mod-n indexing.
      std::vector<std::uint32_t> classic(ref.begin(), ref.end());
      for (unsigned i = 0; i < p.n; ++i) {
        const std::uint32_t x =
            (classic[i] & um) | (classic[(i + 1) % p.n] & lm);
        classic[i] =
            classic[(i + p.m) % p.n] ^ (x >> 1) ^ ((-(x & 1u)) & p.a);
      }
      mt_twist_block_scalar(ref.data(), p);
      ASSERT_EQ(std::vector<std::uint32_t>(ref.begin(), ref.end()), classic)
          << "n=" << p.n << " pass=" << pass;
      mt_twist_block(via_dispatch.data(), p);
      ASSERT_EQ(via_dispatch, ref) << "n=" << p.n << " pass=" << pass;
#if defined(DWI_SIMD_AVX2)
      if (avx2_testable()) {
        mt_twist_block_avx2(via_avx2.data(), p);
        ASSERT_EQ(via_avx2, ref) << "avx2 n=" << p.n << " pass=" << pass;
      }
#endif
    }
  }
}

TEST(SimdKernels, PhiloxBlockBitIdentical) {
  const std::uint32_t key[2] = {0xdeadbeefu, 0x12345678u};
  // Start counters exercising: the ordinary case, a wrap of the low
  // word mid-run (the AVX2 kernel's scalar-fallback group), a wrap
  // landing exactly on a group boundary, and a cascading carry through
  // words 1 and 2.
  const std::uint32_t starts[][4] = {
      {0u, 0u, 0u, 0u},
      {0xfffffff5u, 0u, 0u, 0u},
      {0xfffffff8u, 0x7u, 0u, 0u},
      {0xfffffffeu, 0xffffffffu, 0xffffffffu, 0u},
  };
  for (const auto& start : starts) {
    for (const std::size_t nblocks :
         {std::size_t{1}, std::size_t{7}, std::size_t{8}, std::size_t{9},
          std::size_t{40}}) {
      std::vector<std::uint32_t> ref(nblocks * 4), got(nblocks * 4);
      philox_block_scalar(start, key, nblocks, ref.data());
      philox_block(start, key, nblocks, got.data());
      ASSERT_EQ(got, ref) << "start[0]=" << start[0]
                          << " nblocks=" << nblocks;
#if defined(DWI_SIMD_AVX2)
      if (avx2_testable()) {
        philox_block_avx2(start, key, nblocks, got.data());
        ASSERT_EQ(got, ref) << "avx2 start[0]=" << start[0]
                            << " nblocks=" << nblocks;
      }
#endif
      // Oracle the oracle: each block equals a direct philox4x32 call
      // on the manually incremented counter.
      std::array<std::uint32_t, 4> c = {start[0], start[1], start[2],
                                        start[3]};
      for (std::size_t b = 0; b < nblocks; ++b) {
        const auto direct = philox4x32(c, {key[0], key[1]});
        for (std::size_t w = 0; w < 4; ++w) {
          ASSERT_EQ(ref[b * 4 + w], direct[w]) << "b=" << b << " w=" << w;
        }
        for (int w = 0; w < 4; ++w) {
          if (++c[static_cast<std::size_t>(w)] != 0u) break;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dwi::rng::simd
