// Tests for Mersenne-Twister jump-ahead: exact equivalence with
// sequential stepping, parallel-stream partitioning, and the raw-state
// constructor.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/error.h"
#include "rng/jump.h"
#include "rng/mersenne_twister.h"

namespace dwi::rng {
namespace {

TEST(Jump, RawStateConstructorContinuesTheSequence) {
  // A generator rebuilt from the seed's raw state replays the fresh
  // generator exactly.
  const auto p = mt521_params();
  MersenneTwister fresh(p, 42u);
  MersenneTwister rebuilt(p, initial_raw_state(p, 42u));
  for (int i = 0; i < 2000; ++i) ASSERT_EQ(rebuilt.next(), fresh.next());
}

TEST(Jump, RawStateValidatesSize) {
  const auto p = mt521_params();
  EXPECT_THROW(MersenneTwister(p, std::vector<std::uint32_t>(3)), Error);
}

class JumpEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JumpEquivalence, JumpEqualsSequentialSkip) {
  const std::uint64_t skip = GetParam();
  const auto p = mt521_params();
  MersenneTwister reference(p, 7u);
  for (std::uint64_t i = 0; i < skip; ++i) (void)reference.next();
  MersenneTwister jumped = make_jumped(p, 7u, skip);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_EQ(jumped.next(), reference.next()) << "skip=" << skip
                                               << " output " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Skips, JumpEquivalence,
                         ::testing::Values(0ull, 1ull, 16ull, 17ull, 1000ull,
                                           12'345ull, 1'000'003ull));

TEST(Jump, LargeSkipIsFast) {
  // 2^40 outputs would take hours sequentially; the jump is seconds.
  const auto p = mt521_params();
  MersenneTwister far = make_jumped(p, 3u, 1ull << 40);
  // Sanity: produces plausible uniforms and differs from the start.
  MersenneTwister near(p, 3u);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (far.next() == near.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Jump, ParallelStreamsPartitionTheMasterSequence) {
  const auto p = mt521_params();
  constexpr std::uint64_t kStride = 5'000;
  auto streams = make_parallel_streams(p, 11u, 4, kStride);
  ASSERT_EQ(streams.size(), 4u);

  MersenneTwister master(p, 11u);
  for (unsigned w = 0; w < 4; ++w) {
    for (std::uint64_t i = 0; i < kStride; ++i) {
      ASSERT_EQ(streams[w].next(), master.next())
          << "stream " << w << " output " << i;
    }
  }
}

TEST(Jump, RejectsHugeGeometries) {
  EXPECT_THROW(make_jumped(mt19937_params(), 1u, 100), Error);
}

// Concurrent first-touch of the splitter's lazily grown squaring
// chain: many threads simultaneously request indices whose high bits
// the cache has never seen, racing chain growth against the lock-free
// matrix-vector applies. Run under ThreadSanitizer (the CI tsan job
// runs tier-1) this pins the growth-under-mutex / apply-lock-free
// protocol; everywhere it also pins that racing callers still get
// exactly the sequential answer.
TEST(Jump, SplitterConcurrentFirstTouchIsSafeAndDeterministic) {
  const auto p = mt521_params();
  constexpr std::uint64_t kStride = 997;
  // Indices chosen so every thread's first call needs a chain entry
  // that does not exist yet (high bits up to 2^40).
  const std::uint64_t indices[] = {1,    3,   (1ull << 17) + 5, 64,
                                   1023, 513, (1ull << 40) + 1, 255};
  constexpr unsigned kThreads = 8;

  // Sequential reference from a fresh splitter.
  std::vector<std::uint32_t> expected[kThreads];
  {
    const SubstreamSplitter ref(p, 9u, kStride);
    for (unsigned t = 0; t < kThreads; ++t) {
      MersenneTwister mt = ref.stream(indices[t]);
      for (int i = 0; i < 64; ++i) expected[t].push_back(mt.next());
    }
  }

  const SubstreamSplitter shared(p, 9u, kStride);
  std::vector<std::thread> workers;
  std::atomic<unsigned> mismatches{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int rep = 0; rep < 4; ++rep) {
        MersenneTwister mt = shared.stream(indices[t]);
        for (int i = 0; i < 64; ++i) {
          if (mt.next() != expected[t][static_cast<std::size_t>(i)]) {
            mismatches.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace dwi::rng
