// Tests for Mersenne-Twister jump-ahead: exact equivalence with
// sequential stepping, parallel-stream partitioning, and the raw-state
// constructor.
#include <gtest/gtest.h>

#include "common/error.h"
#include "rng/jump.h"
#include "rng/mersenne_twister.h"

namespace dwi::rng {
namespace {

TEST(Jump, RawStateConstructorContinuesTheSequence) {
  // A generator rebuilt from the seed's raw state replays the fresh
  // generator exactly.
  const auto p = mt521_params();
  MersenneTwister fresh(p, 42u);
  MersenneTwister rebuilt(p, initial_raw_state(p, 42u));
  for (int i = 0; i < 2000; ++i) ASSERT_EQ(rebuilt.next(), fresh.next());
}

TEST(Jump, RawStateValidatesSize) {
  const auto p = mt521_params();
  EXPECT_THROW(MersenneTwister(p, std::vector<std::uint32_t>(3)), Error);
}

class JumpEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JumpEquivalence, JumpEqualsSequentialSkip) {
  const std::uint64_t skip = GetParam();
  const auto p = mt521_params();
  MersenneTwister reference(p, 7u);
  for (std::uint64_t i = 0; i < skip; ++i) (void)reference.next();
  MersenneTwister jumped = make_jumped(p, 7u, skip);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_EQ(jumped.next(), reference.next()) << "skip=" << skip
                                               << " output " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Skips, JumpEquivalence,
                         ::testing::Values(0ull, 1ull, 16ull, 17ull, 1000ull,
                                           12'345ull, 1'000'003ull));

TEST(Jump, LargeSkipIsFast) {
  // 2^40 outputs would take hours sequentially; the jump is seconds.
  const auto p = mt521_params();
  MersenneTwister far = make_jumped(p, 3u, 1ull << 40);
  // Sanity: produces plausible uniforms and differs from the start.
  MersenneTwister near(p, 3u);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (far.next() == near.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Jump, ParallelStreamsPartitionTheMasterSequence) {
  const auto p = mt521_params();
  constexpr std::uint64_t kStride = 5'000;
  auto streams = make_parallel_streams(p, 11u, 4, kStride);
  ASSERT_EQ(streams.size(), 4u);

  MersenneTwister master(p, 11u);
  for (unsigned w = 0; w < 4; ++w) {
    for (std::uint64_t i = 0; i < kStride; ++i) {
      ASSERT_EQ(streams[w].next(), master.next())
          << "stream " << w << " output " << i;
    }
  }
}

TEST(Jump, RejectsHugeGeometries) {
  EXPECT_THROW(make_jumped(mt19937_params(), 1u, 100), Error);
}

}  // namespace
}  // namespace dwi::rng
