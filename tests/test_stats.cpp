// Unit + property tests for src/stats: special functions against known
// values, distributions against analytic identities, histogram/moments
// bookkeeping, and the KS/chi-square machinery calibrated on samples it
// must accept and samples it must reject.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <span>
#include <vector>

#include "common/error.h"
#include "stats/chi_square.h"
#include "stats/distributions.h"
#include "stats/histogram.h"
#include "stats/ks_test.h"
#include "stats/moments.h"
#include "stats/special.h"

namespace dwi::stats {
namespace {

TEST(Special, GammaPKnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(0.5, x) = erf(sqrt(x)).
  for (double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-12);
  }
}

TEST(Special, GammaPComplement) {
  for (double a : {0.3, 1.0, 2.5, 10.0}) {
    for (double x : {0.01, 0.5, 1.0, 3.0, 20.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
    }
  }
}

TEST(Special, GammaPMonotone) {
  double prev = 0.0;
  for (double x = 0.0; x < 10.0; x += 0.1) {
    const double p = gamma_p(2.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Special, InverseNormalCdfRoundTrip) {
  for (double p : {1e-10, 1e-5, 0.01, 0.02425, 0.3, 0.5, 0.7, 0.97575, 0.99,
                   1.0 - 1e-5}) {
    const double x = inverse_normal_cdf(p);
    EXPECT_NEAR(normal_cdf(x), p, 1e-12 + 1e-9 * p);
  }
}

TEST(Special, InverseNormalCdfKnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-14);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.025), -1.959963984540054, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.8413447460685429), 1.0, 1e-9);
}

TEST(Special, InverseNormalCdfRejectsOutOfDomain) {
  EXPECT_THROW(inverse_normal_cdf(0.0), Error);
  EXPECT_THROW(inverse_normal_cdf(1.0), Error);
}

TEST(Special, ErfInvIdentity) {
  for (double x : {-0.99, -0.5, -0.1, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(std::erf(erf_inv(x)), x, 1e-11);
  }
  EXPECT_NEAR(erf_inv(0.0), 0.0, 1e-14);
}

TEST(Special, ErfcInvIdentity) {
  for (double x : {0.01, 0.5, 1.0, 1.5, 1.99}) {
    EXPECT_NEAR(std::erfc(erfc_inv(x)), x, 1e-10);
  }
}

TEST(Special, KolmogorovQLimits) {
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
  EXPECT_NEAR(kolmogorov_q(10.0), 0.0, 1e-12);
  // Known point: Q(1.0) ≈ 0.26999967.
  EXPECT_NEAR(kolmogorov_q(1.0), 0.26999967, 1e-6);
  // Monotone decreasing.
  double prev = 1.0;
  for (double l = 0.1; l < 3.0; l += 0.1) {
    const double q = kolmogorov_q(l);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

TEST(Distributions, NormalPdfCdfConsistency) {
  // d/dx CDF == PDF (finite differences).
  for (double x : {-2.0, -0.5, 0.0, 0.7, 2.5}) {
    const double h = 1e-6;
    const double deriv = (normal_cdf(x + h) - normal_cdf(x - h)) / (2 * h);
    EXPECT_NEAR(deriv, normal_pdf(x), 1e-8);
  }
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
}

TEST(Distributions, GammaPdfIntegratesToCdf) {
  // Trapezoid integration of the PDF matches the CDF.
  const double shape = 2.3;
  const double scale = 0.8;
  double acc = 0.0;
  const double h = 1e-3;
  for (double x = h; x <= 5.0; x += h) {
    acc += 0.5 * h * (gamma_pdf(x - h, shape, scale) + gamma_pdf(x, shape, scale));
    if (std::fabs(x - 2.0) < h / 2) {
      EXPECT_NEAR(acc, gamma_cdf(2.0, shape, scale), 1e-5);
    }
  }
}

TEST(Distributions, GammaQuantileInvertsCdf) {
  for (double p : {0.01, 0.25, 0.5, 0.9, 0.999}) {
    for (double shape : {0.5, 1.0, 3.0}) {
      const double x = gamma_quantile(p, shape, 1.39);
      EXPECT_NEAR(gamma_cdf(x, shape, 1.39), p, 1e-9);
    }
  }
}

TEST(Distributions, SectorParameterization) {
  // §II-D4: E(S) = 1, Var(S) = v for every sector variance v.
  for (double v : {0.1, 0.3, 1.39, 100.0}) {
    const auto g = GammaParams::from_sector_variance(v);
    EXPECT_DOUBLE_EQ(g.mean(), 1.0);
    EXPECT_NEAR(g.variance(), v, 1e-12);
  }
}

TEST(Histogram, CountsAndDensity) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(0.5);  // all in bin 0
  h.add(-1.0);
  h.add(11.0);
  EXPECT_EQ(h.count(0), 100u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 102u);
  EXPECT_NEAR(h.density(0), 100.0 / (102.0 * 1.0), 1e-12);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_NEAR(h.bin_center(0), 0.125, 1e-12);
  EXPECT_NEAR(h.bin_center(3), 0.875, 1e-12);
}

TEST(Histogram, UpperEdgeGoesToOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(1.0);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Moments, MatchesClosedForm) {
  RunningMoments m;
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  m.add(std::span<const double>(xs));
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
  EXPECT_DOUBLE_EQ(m.variance(), 2.5);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 5.0);
  EXPECT_NEAR(m.skewness(), 0.0, 1e-12);
}

TEST(Moments, NormalSampleMoments) {
  std::mt19937_64 eng(7);
  std::normal_distribution<double> nd(2.0, 3.0);
  RunningMoments m;
  for (int i = 0; i < 200000; ++i) m.add(nd(eng));
  EXPECT_NEAR(m.mean(), 2.0, 0.05);
  EXPECT_NEAR(m.stddev(), 3.0, 0.05);
  EXPECT_NEAR(m.skewness(), 0.0, 0.05);
  EXPECT_NEAR(m.excess_kurtosis(), 0.0, 0.1);
}

TEST(Moments, MergeEqualsSequential) {
  std::mt19937_64 eng(13);
  std::uniform_real_distribution<double> ud(0.0, 1.0);
  RunningMoments all;
  RunningMoments a;
  RunningMoments b;
  for (int i = 0; i < 10000; ++i) {
    const double x = ud(eng);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_NEAR(a.skewness(), all.skewness(), 1e-8);
  EXPECT_NEAR(a.excess_kurtosis(), all.excess_kurtosis(), 1e-8);
}

TEST(KsTest, AcceptsMatchingDistribution) {
  std::mt19937_64 eng(21);
  std::uniform_real_distribution<double> ud(0.0, 1.0);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = ud(eng);
  const auto r = ks_test(std::span<const double>(xs),
                         [](double x) { return x < 0 ? 0.0 : (x > 1 ? 1.0 : x); });
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTest, RejectsWrongDistribution) {
  std::mt19937_64 eng(22);
  std::normal_distribution<double> nd(0.3, 1.0);  // shifted
  std::vector<double> xs(20000);
  for (auto& x : xs) x = nd(eng);
  const auto r =
      ks_test(std::span<const double>(xs), [](double x) { return normal_cdf(x); });
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(ChiSquare, AcceptsMatchingGamma) {
  GammaParams g = GammaParams::from_sector_variance(1.39);
  std::mt19937_64 eng(31);
  std::gamma_distribution<double> gd(g.shape, g.scale);
  Histogram h(0.0, 12.0, 64);
  for (int i = 0; i < 100000; ++i) h.add(gd(eng));
  const auto r = chi_square_test(
      h, [&](double x) { return gamma_cdf(x, g.shape, g.scale); });
  EXPECT_GT(r.p_value, 1e-3) << "X2=" << r.statistic << " dof=" << r.dof;
}

TEST(ChiSquare, RejectsWrongGamma) {
  std::mt19937_64 eng(32);
  std::gamma_distribution<double> gd(2.0, 1.0);
  Histogram h(0.0, 12.0, 64);
  for (int i = 0; i < 100000; ++i) h.add(gd(eng));
  const auto r = chi_square_test(
      h, [&](double x) { return gamma_cdf(x, 1.0, 2.0); });  // same mean
  EXPECT_LT(r.p_value, 1e-10);
}

}  // namespace
}  // namespace dwi::stats
