// Tests for the analytic CreditRisk+ recursion: power-series algebra,
// closed-form special cases (pure Poisson, single sector), moment
// identities, and agreement with the Monte-Carlo engine.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "common/error.h"
#include "finance/creditrisk_plus.h"
#include "finance/panjer.h"
#include "stats/special.h"

namespace dwi::finance {
namespace {

TEST(Series, MultiplyTruncated) {
  // (1 + z)² = 1 + 2z + z².
  std::vector<double> a = {1, 1, 0, 0};
  const auto c = series::multiply(a, a);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  EXPECT_DOUBLE_EQ(c[2], 1.0);
  EXPECT_DOUBLE_EQ(c[3], 0.0);
}

TEST(Series, LogOfExpIsIdentity) {
  std::vector<double> h = {0.3, -1.2, 0.5, 0.07, -0.3, 0.11};
  const auto back = series::log(series::exp(h));
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_NEAR(back[i], h[i], 1e-12) << "coefficient " << i;
  }
}

TEST(Series, ExpMatchesPoissonPgf) {
  // exp(μ(z−1)) coefficients are Poisson(μ) probabilities.
  const double mu = 2.5;
  std::vector<double> h(12, 0.0);
  h[0] = -mu;
  h[1] = mu;
  const auto a = series::exp(h);
  for (std::size_t n = 0; n < a.size(); ++n) {
    const double expected =
        std::exp(-mu + static_cast<double>(n) * std::log(mu) -
                 stats::log_gamma(static_cast<double>(n) + 1.0));
    EXPECT_NEAR(a[n], expected, 1e-12) << "n=" << n;
  }
}

TEST(Series, LogValidatesInput) {
  EXPECT_THROW(series::log({0.0, 1.0}), Error);
  EXPECT_THROW(series::log({}), Error);
}

Portfolio idiosyncratic_only(double pd, double exposure, int n_obligors) {
  std::vector<Obligor> obligors(
      static_cast<std::size_t>(n_obligors),
      Obligor{exposure, pd, {0.0}});  // zero sector loading
  return Portfolio({{1.0, "unused"}}, std::move(obligors));
}

TEST(Panjer, PurePoissonSingleObligor) {
  // One obligor, idiosyncratic only: L/ν·L0 ~ Poisson(p).
  const auto p = idiosyncratic_only(0.04, 5.0, 1);
  const auto dist = creditrisk_plus_analytic(p, 1.0, 64);
  EXPECT_NEAR(dist.captured_mass(), 1.0, 1e-12);
  // P(0 defaults) = e^-0.04; P(1) lands at band ν = 5.
  EXPECT_NEAR(dist.probabilities[0], std::exp(-0.04), 1e-12);
  EXPECT_NEAR(dist.probabilities[5], std::exp(-0.04) * 0.04, 1e-12);
  EXPECT_DOUBLE_EQ(dist.probabilities[1], 0.0);
}

TEST(Panjer, MomentsMatchClosedForm) {
  const auto p = Portfolio::synthetic(
      150, {{1.39, "a"}, {0.6, "b"}}, 17);
  const double unit = default_loss_unit(p) / 4.0;
  const auto dist = creditrisk_plus_analytic(p, unit, 4096);
  EXPECT_NEAR(dist.captured_mass(), 1.0, 1e-6);
  // Banding rounds exposures, so allow a percent-level tolerance.
  EXPECT_NEAR(dist.mean() / p.expected_loss(), 1.0, 0.02);
  EXPECT_NEAR(dist.variance() / p.analytic_loss_variance(), 1.0, 0.05);
}

TEST(Panjer, SingleGammaSectorNegativeBinomialCase) {
  // Homogeneous obligors fully loaded on one gamma sector with unit
  // exposure: defaults follow a negative-binomial; check the first
  // coefficients against the closed form
  //   G(z) = (1 − q(z−1)/ (1/...)) ... equivalently
  //   P(0) = (1 + vμ)^(−1/v).
  const double pd = 0.02;
  const int n = 50;
  const double v = 1.39;
  std::vector<Obligor> obligors(n, Obligor{1.0, pd, {1.0}});
  Portfolio p({{v, "s"}}, std::move(obligors));
  const double mu = n * pd;
  const auto dist = creditrisk_plus_analytic(p, 1.0, 512);
  EXPECT_NEAR(dist.probabilities[0], std::pow(1.0 + v * mu, -1.0 / v),
              1e-12);
  // Negative binomial pmf: P(k) = C(k+α−1, k) q^k (1−q)^α with
  // α = 1/v, q = vμ/(1+vμ).
  const double alpha = 1.0 / v;
  const double q = v * mu / (1.0 + v * mu);
  double log_coeff = 0.0;  // log C(k+α−1, k) accumulated iteratively
  for (int k = 1; k <= 8; ++k) {
    log_coeff += std::log((alpha + k - 1.0) / k);
    const double expected = std::exp(log_coeff + k * std::log(q) +
                                     alpha * std::log(1.0 - q));
    EXPECT_NEAR(dist.probabilities[static_cast<std::size_t>(k)], expected,
                1e-10)
        << "k=" << k;
  }
}

TEST(Panjer, AgreesWithMonteCarlo) {
  // The analytic recursion and the Monte-Carlo engine implement the
  // same model through entirely different code paths: their CDFs must
  // agree within MC error.
  const auto p = Portfolio::synthetic(
      120, {{1.39, "a"}, {0.5, "b"}, {2.0, "c"}}, 23);
  const double unit = default_loss_unit(p) / 2.0;
  const auto analytic = creditrisk_plus_analytic(p, unit, 8192);
  ASSERT_NEAR(analytic.captured_mass(), 1.0, 1e-5);

  McConfig mc;
  mc.num_scenarios = 30'000;
  const auto sim = simulate_losses(p, mc, sampler_gamma_source(p, 31));

  EXPECT_NEAR(sim.mean() / analytic.mean(), 1.0, 0.03);
  EXPECT_NEAR(std::sqrt(sim.variance()) / std::sqrt(analytic.variance()),
              1.0, 0.06);
  for (double conf : {0.9, 0.99}) {
    EXPECT_NEAR(sim.value_at_risk(conf) / analytic.value_at_risk(conf), 1.0,
                0.10)
        << "confidence " << conf;
  }
}

TEST(Panjer, VarMonotoneInConfidence) {
  const auto p = Portfolio::synthetic(80, {{1.39, "s"}}, 41);
  const auto dist =
      creditrisk_plus_analytic(p, default_loss_unit(p), 4096);
  double prev = 0.0;
  for (double conf : {0.5, 0.9, 0.99, 0.999, 0.9999}) {
    const double var = dist.value_at_risk(conf);
    EXPECT_GE(var, prev);
    prev = var;
  }
  EXPECT_GE(dist.expected_shortfall(0.99), dist.value_at_risk(0.99));
}

TEST(Panjer, ValidatesInputs) {
  const auto p = idiosyncratic_only(0.01, 1.0, 3);
  EXPECT_THROW(creditrisk_plus_analytic(p, 0.0, 64), Error);
  EXPECT_THROW(creditrisk_plus_analytic(p, 1.0, 1), Error);
  const auto dist = creditrisk_plus_analytic(p, 1.0, 64);
  EXPECT_THROW(dist.value_at_risk(0.0), Error);
}

}  // namespace
}  // namespace dwi::finance
