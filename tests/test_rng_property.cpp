// Property-based tests across the RNG substrate: parameterized
// equidistribution sweeps, transform invariants (symmetry,
// monotonicity, acceptance bounds), enable-pattern properties of the
// adapted twister, and cross-implementation agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <span>
#include <vector>

#include "common/bits.h"
#include "rng/erfinv.h"
#include "rng/gamma.h"
#include "rng/icdf_bitwise.h"
#include "rng/mersenne_twister.h"
#include "rng/normal.h"
#include "stats/distributions.h"
#include "stats/ks_test.h"
#include "stats/moments.h"
#include "stats/special.h"

namespace dwi::rng {
namespace {

// --- Mersenne-Twister sweeps ----------------------------------------------

struct MtCase {
  const char* name;
  bool use_521;
  std::uint32_t seed;
};

class MtEquidistribution : public ::testing::TestWithParam<MtCase> {};

TEST_P(MtEquidistribution, PairsFillTheUnitSquare) {
  // 2-D equidistribution: successive pairs land uniformly in a 8x8
  // grid (chi-square on 64 cells).
  const auto& param = GetParam();
  MersenneTwister mt(param.use_521 ? mt521_params() : mt19937_params(),
                     param.seed);
  constexpr int kPairs = 120000;
  std::array<int, 64> cells{};
  for (int i = 0; i < kPairs; ++i) {
    const auto x = static_cast<unsigned>(mt.next() >> 29);  // 3 bits
    const auto y = static_cast<unsigned>(mt.next() >> 29);
    ++cells[x * 8 + y];
  }
  const double expected = kPairs / 64.0;
  double x2 = 0.0;
  for (int c : cells) {
    const double d = c - expected;
    x2 += d * d / expected;
  }
  // 63 dof: reject only far in the tail.
  EXPECT_LT(x2, 120.0) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    Generators, MtEquidistribution,
    ::testing::Values(MtCase{"mt19937_s1", false, 1u},
                      MtCase{"mt19937_s42", false, 42u},
                      MtCase{"mt521_s1", true, 1u},
                      MtCase{"mt521_s42", true, 42u},
                      MtCase{"mt521_s777", true, 777u}),
    [](const auto& param_info) {
      return std::string(param_info.param.name);
    });

TEST(AdaptedMtProperty, RandomEnablePatternsNeverDistort) {
  // For many random enable patterns, the filtered output equals the
  // plain sequence — the §II-E guarantee, hammered.
  for (std::uint32_t pattern_seed = 1; pattern_seed <= 8; ++pattern_seed) {
    MersenneTwister plain(mt521_params(), 5u);
    AdaptedMersenneTwister gated(mt521_params(), 5u);
    std::mt19937 pattern(pattern_seed);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    const double enable_prob = 0.1 + 0.8 * u(pattern);
    for (int step = 0; step < 3000; ++step) {
      const bool enable = u(pattern) < enable_prob;
      const std::uint32_t out = gated.next(enable);
      if (enable) {
        ASSERT_EQ(out, plain.next())
            << "pattern " << pattern_seed << " step " << step;
      }
    }
  }
}

// --- transform invariants ---------------------------------------------------

TEST(ErfinvProperty, MonotoneIncreasing) {
  float prev = -std::numeric_limits<float>::infinity();
  for (float x = -0.9999f; x < 0.9999f; x += 1e-3f) {
    const float y = erfinv_giles(x);
    ASSERT_GE(y, prev) << "x=" << x;
    prev = y;
  }
}

TEST(IcdfBitwiseProperty, QuantileMappingPreservesOrderStatistics) {
  // For uniform u, P(icdf(u) <= t) must equal Φ(t): check at a grid of
  // thresholds with exact counting over a random sample.
  std::mt19937 eng(3);
  constexpr int kN = 300000;
  std::vector<float> xs;
  xs.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    const auto r = normal_icdf_bitwise(static_cast<std::uint32_t>(eng()));
    if (r.valid) xs.push_back(r.value);
  }
  for (double t : {-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0}) {
    const auto below = static_cast<double>(
        std::count_if(xs.begin(), xs.end(),
                      [&](float v) { return v <= t; }));
    const double empirical = below / static_cast<double>(xs.size());
    EXPECT_NEAR(empirical, stats::normal_cdf(t), 0.004) << "t=" << t;
  }
}

TEST(MarsagliaBrayProperty, AcceptedSamplesIndependentOfRejectionCount) {
  // The distribution of an accepted sample must not depend on how many
  // rejections preceded it (memorylessness of rejection sampling):
  // split accepted samples by preceding-rejection parity and compare.
  MersenneTwister mt(mt19937_params(), 31u);
  stats::RunningMoments after_even;
  stats::RunningMoments after_odd;
  int rejections = 0;
  for (int i = 0; i < 400000; ++i) {
    const auto a = marsaglia_bray_attempt(mt.next(), mt.next());
    if (!a.valid) {
      ++rejections;
      continue;
    }
    ((rejections % 2 == 0) ? after_even : after_odd)
        .add(static_cast<double>(a.value));
    rejections = 0;
  }
  EXPECT_NEAR(after_even.mean(), after_odd.mean(), 0.02);
  EXPECT_NEAR(after_even.variance(), after_odd.variance(), 0.03);
}

TEST(GammaProperty, AcceptanceProbabilityIncreasesWithShape) {
  // Marsaglia-Tsang acceptance grows with d (larger α): sweep.
  double prev_rate = 0.0;
  for (float alpha : {1.1f, 2.0f, 4.0f, 16.0f}) {
    GammaSampler sampler(GammaConstants::make(alpha),
                         NormalTransform::kIcdfCuda);
    MersenneTwister mt(mt19937_params(), 71u);
    auto src = [&] { return mt.next(); };
    for (int i = 0; i < 30000; ++i) (void)sampler.sample(src);
    const double acceptance = 1.0 - sampler.rejection_rate();
    EXPECT_GT(acceptance, prev_rate) << "alpha=" << alpha;
    prev_rate = acceptance;
  }
  EXPECT_GT(prev_rate, 0.99);  // large shapes accept nearly always
}

TEST(GammaProperty, ScalingIdentity) {
  // Gamma(α, b) == b · Gamma(α, 1) in distribution: compare moments of
  // the same stream scaled two ways.
  const float alpha = 0.72f;
  GammaSampler unit(GammaConstants::make(alpha, 1.0f),
                    NormalTransform::kMarsagliaBray);
  GammaSampler scaled(GammaConstants::make(alpha, 3.0f),
                      NormalTransform::kMarsagliaBray);
  MersenneTwister mt_a(mt19937_params(), 81u);
  MersenneTwister mt_b(mt19937_params(), 81u);  // identical stream
  auto src_a = [&] { return mt_a.next(); };
  auto src_b = [&] { return mt_b.next(); };
  for (int i = 0; i < 20000; ++i) {
    const float u = unit.sample(src_a);
    const float s = scaled.sample(src_b);
    ASSERT_NEAR(s, 3.0f * u, 3e-4f * (1.0f + std::fabs(3.0f * u)));
  }
}

TEST(GammaProperty, SumOfGammasIsGamma) {
  // Gamma(α1,b) + Gamma(α2,b) ~ Gamma(α1+α2,b): KS on the sum.
  MersenneTwister mt(mt19937_params(), 91u);
  auto src = [&] { return mt.next(); };
  GammaSampler g1(GammaConstants::make(0.8f), NormalTransform::kIcdfCuda);
  GammaSampler g2(GammaConstants::make(1.4f), NormalTransform::kIcdfCuda);
  std::vector<double> sums(60000);
  for (auto& s : sums) {
    s = static_cast<double>(g1.sample(src)) +
        static_cast<double>(g2.sample(src));
  }
  const auto ks = stats::ks_test(std::span<const double>(sums),
                                 [](double x) {
                                   return stats::gamma_cdf(x, 2.2, 1.0);
                                 });
  EXPECT_GT(ks.p_value, 1e-4) << "KS D=" << ks.statistic;
}

TEST(TransformAgreement, BothIcdfVariantsConvergeToTheSameLaw) {
  // CUDA-style and FPGA-style ICDF differ in arithmetic but implement
  // the same function: quantiles of their outputs must agree closely.
  std::mt19937 eng(7);
  std::vector<float> cuda;
  std::vector<float> bitwise;
  for (int i = 0; i < 200000; ++i) {
    const auto u = static_cast<std::uint32_t>(eng());
    cuda.push_back(normal_icdf_cuda(u));
    const auto r = normal_icdf_bitwise(u);
    if (r.valid) bitwise.push_back(r.value);
  }
  std::sort(cuda.begin(), cuda.end());
  std::sort(bitwise.begin(), bitwise.end());
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const auto ic = static_cast<std::size_t>(
        q * static_cast<double>(cuda.size() - 1));
    const auto ib = static_cast<std::size_t>(
        q * static_cast<double>(bitwise.size() - 1));
    EXPECT_NEAR(cuda[ic], bitwise[ib], 2e-3)
        << "quantile " << q;
  }
}

}  // namespace
}  // namespace dwi::rng
