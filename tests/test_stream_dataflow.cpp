// Tests for hls::stream and the DATAFLOW region runner: blocking FIFO
// semantics, producer/consumer decoupling, and the pragma descriptors.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/error.h"
#include "hls/dataflow.h"
#include "hls/pragmas.h"
#include "hls/stream.h"

namespace dwi::hls {
namespace {

TEST(Stream, FifoOrderSingleThread) {
  stream<int> s(8);
  for (int i = 0; i < 8; ++i) s.write(i);
  EXPECT_TRUE(s.full());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(s.read(), i);
  EXPECT_TRUE(s.empty());
}

TEST(Stream, NonBlockingVariants) {
  stream<int> s(1);
  int v = -1;
  EXPECT_FALSE(s.read_nb(v));
  EXPECT_TRUE(s.write_nb(7));
  EXPECT_FALSE(s.write_nb(8));  // full
  EXPECT_TRUE(s.read_nb(v));
  EXPECT_EQ(v, 7);
}

TEST(Stream, DefaultDepthIsTwo) {
  stream<int> s;
  EXPECT_EQ(s.depth(), 2u);
  EXPECT_TRUE(s.write_nb(1));
  EXPECT_TRUE(s.write_nb(2));
  EXPECT_FALSE(s.write_nb(3));
}

TEST(Stream, RejectsZeroDepth) { EXPECT_THROW(stream<int>(0), Error); }

TEST(Stream, BlockingHandshakeBetweenThreads) {
  stream<int> s(2);
  constexpr int kN = 10000;
  std::vector<int> received;
  received.reserve(kN);
  std::thread consumer([&] {
    for (int i = 0; i < kN; ++i) received.push_back(s.read());
  });
  for (int i = 0; i < kN; ++i) s.write(i);
  consumer.join();
  for (int i = 0; i < kN; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
}

TEST(Stream, PeakDepthBoundedByCapacity) {
  // The FIFO really backpressures: with depth 4, a fast producer can
  // never run more than 4 elements ahead of the consumer.
  stream<int> s(4);
  std::thread consumer([&] {
    for (int i = 0; i < 5000; ++i) (void)s.read();
  });
  for (int i = 0; i < 5000; ++i) s.write(i);
  consumer.join();
  EXPECT_LE(s.peak_depth(), 4u);
  EXPECT_EQ(s.total_writes(), 5000u);
}

TEST(Dataflow, RunsAllProcessesToCompletion) {
  stream<int> a(2);
  stream<int> b(2);
  std::vector<int> out;
  DataflowRegion region;
  region.add_process("produce", [&] {
    for (int i = 0; i < 100; ++i) a.write(i);
  });
  region.add_process("transform", [&] {
    for (int i = 0; i < 100; ++i) b.write(a.read() * 2);
  });
  region.add_process("consume", [&] {
    for (int i = 0; i < 100; ++i) out.push_back(b.read());
  });
  region.run();
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], 2 * i);
}

TEST(Dataflow, PropagatesProcessException) {
  DataflowRegion region;
  region.add_process("ok", [] {});
  region.add_process("boom", [] { throw Error("process failed"); });
  EXPECT_THROW(region.run(), Error);
}

TEST(Dataflow, VariadicHelper) {
  std::atomic<int> sum{0};
  dataflow([&] { sum += 1; }, [&] { sum += 2; }, [&] { sum += 4; });
  EXPECT_EQ(sum.load(), 7);
}

TEST(Dataflow, ProcessesRunConcurrentlyNotSequentially) {
  // A producer/consumer pair over a depth-1 stream deadlocks if the
  // region serialized the processes; concurrency is required.
  stream<int> s(1);
  DataflowRegion region;
  region.add_process("p", [&] {
    for (int i = 0; i < 50; ++i) s.write(i);
  });
  region.add_process("c", [&] {
    for (int i = 0; i < 50; ++i) EXPECT_EQ(s.read(), i);
  });
  region.run();  // would deadlock if serialized
}

TEST(Pragmas, EffectiveIi) {
  PragmaSet ps;
  EXPECT_EQ(ps.effective_ii(), 0u);
  ps.pipeline.push_back(PipelinePragma{4});
  ps.pipeline.push_back(PipelinePragma{1});
  EXPECT_EQ(ps.effective_ii(), 1u);
}

TEST(Pragmas, StreamDepthLookup) {
  PragmaSet ps;
  ps.streams.push_back(StreamPragma{"gammaStream", 16});
  EXPECT_EQ(ps.stream_depth("gammaStream"), 16u);
  EXPECT_EQ(ps.stream_depth("other"), 2u);  // Vivado default
}

TEST(Pragmas, FalseDependenceLookup) {
  PragmaSet ps;
  ps.dependences.push_back(DependencePragma{"transfBuf", true, true});
  EXPECT_TRUE(ps.has_false_dependence("transfBuf"));
  EXPECT_FALSE(ps.has_false_dependence("counter"));
}

}  // namespace
}  // namespace dwi::hls
