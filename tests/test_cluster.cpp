// Sharded-cluster tests (serve/cluster.h):
//   * the cross-shard determinism matrix — a fixed request set with a
//     fixed server seed yields bit-identical responses across shard
//     counts {1, 2, 4, 8}, both routing policies, stealing on/off,
//     resident/classic execution, thread counts, and heterogeneous
//     device bindings (FPGA / CPU / GPU / PHI shards);
//   * consistent-hash ring properties: per-shard load balanced within
//     bounds, minimal remap when a shard is added or removed,
//     preference order starts at the owner and covers every shard;
//   * router backpressure: a full shard surfaces typed kQueueFull
//     through the router (steal off), and retry-on-next-shard admits
//     the overflow elsewhere (steal on) with identical response bytes;
//   * offline reproduction at cluster scope: any served response is
//     recomputable from (server_seed, request id) alone via
//     Philox::seek, placement unknown and unneeded;
//   * resident pipe stall counters: monotone in resident mode,
//     surfaced through shard and cluster snapshots, zero in classic
//     mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "finance/creditrisk_plus.h"
#include "finance/portfolio.h"
#include "minicl/shard_backend.h"
#include "rng/gamma.h"
#include "rng/philox.h"
#include "serve/cluster.h"

namespace dwi {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { exec::set_thread_count(0); }
};

std::shared_ptr<const finance::Portfolio> test_portfolio() {
  static const auto portfolio =
      std::make_shared<const finance::Portfolio>(finance::Portfolio::synthetic(
          16, {{1.39, "representative"}, {0.8, "stable"}}, 7u));
  return portfolio;
}

/// One matrix item — any of the five request kinds, discriminated the
/// same way the scheduler does.
struct RequestItem {
  serve::RequestKind kind = serve::RequestKind::kGamma;
  serve::GammaRequest gamma;
  serve::CreditRiskRequest credit;
  serve::HistogramRequest histogram;
  serve::SpmvRequest spmv;
  serve::MatchingRequest matching;
};

/// Mixed set over ALL FIVE request kinds with ids spread enough for
/// the hash ring to scatter them across shards. The zoo kinds ride the
/// same matrix cells as gamma/CreditRisk+ — placement must be
/// invisible in their payloads AND their cycle stats.
std::vector<RequestItem> mixed_request_set() {
  const float alphas[3] = {0.72f, 1.5f, 4.0f};
  std::vector<RequestItem> items;
  for (std::size_t i = 0; i < 24; ++i) {
    RequestItem item;
    const serve::RequestId id = 1000 + i * 17;
    switch (i % 6) {
      case 2:
        item.kind = serve::RequestKind::kCreditRisk;
        item.credit.id = id;
        item.credit.portfolio = test_portfolio();
        item.credit.num_scenarios = 48;
        break;
      case 3:
        item.kind = serve::RequestKind::kHistogram;
        item.histogram.id = id;
        item.histogram.num_updates = 600;
        item.histogram.num_bins = 64;
        item.histogram.hot_fraction = 0.3f;
        if (i % 2 == 1) {
          item.histogram.mode = workloads::SchedulingMode::kStatic;
        }
        break;
      case 4:
        item.kind = serve::RequestKind::kSpmv;
        item.spmv.id = id;
        item.spmv.rows = 96;
        item.spmv.nnz_per_row_max = 5;
        break;
      case 5:
        item.kind = serve::RequestKind::kMatching;
        item.matching.id = id;
        item.matching.num_vertices = 120;
        item.matching.num_edges = 300;
        item.matching.target_pairs = (i % 4 == 1) ? 20u : 0u;
        break;
      default:
        item.gamma.id = id;
        item.gamma.alpha = alphas[i % 3];
        item.gamma.scale = 1.39f;
        item.gamma.count = 129;  // off a block boundary on purpose
        break;
    }
    items.push_back(item);
  }
  return items;
}

struct ServedResults {
  std::vector<serve::GammaResult> gamma;        // by set position
  std::vector<serve::CreditRiskResult> credit;  // by set position
  std::vector<serve::HistogramResult> histogram;
  std::vector<serve::SpmvResult> spmv;
  std::vector<serve::MatchingResult> matching;
};

ServedResults serve_set(serve::ShardedSamplingServer& cluster,
                        const std::vector<RequestItem>& items) {
  std::vector<std::future<serve::GammaResult>> gf(items.size());
  std::vector<std::future<serve::CreditRiskResult>> cf(items.size());
  std::vector<std::future<serve::HistogramResult>> hf(items.size());
  std::vector<std::future<serve::SpmvResult>> sf(items.size());
  std::vector<std::future<serve::MatchingResult>> mf(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    switch (items[i].kind) {
      case serve::RequestKind::kGamma:
        gf[i] = cluster.submit(items[i].gamma);
        break;
      case serve::RequestKind::kCreditRisk:
        cf[i] = cluster.submit(items[i].credit);
        break;
      case serve::RequestKind::kHistogram:
        hf[i] = cluster.submit(items[i].histogram);
        break;
      case serve::RequestKind::kSpmv:
        sf[i] = cluster.submit(items[i].spmv);
        break;
      case serve::RequestKind::kMatching:
        mf[i] = cluster.submit(items[i].matching);
        break;
    }
  }
  ServedResults out;
  out.gamma.resize(items.size());
  out.credit.resize(items.size());
  out.histogram.resize(items.size());
  out.spmv.resize(items.size());
  out.matching.resize(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    switch (items[i].kind) {
      case serve::RequestKind::kGamma: out.gamma[i] = gf[i].get(); break;
      case serve::RequestKind::kCreditRisk: out.credit[i] = cf[i].get(); break;
      case serve::RequestKind::kHistogram:
        out.histogram[i] = hf[i].get();
        break;
      case serve::RequestKind::kSpmv: out.spmv[i] = sf[i].get(); break;
      case serve::RequestKind::kMatching:
        out.matching[i] = mf[i].get();
        break;
    }
  }
  return out;
}

void expect_identical_stats(const serve::WorkloadStatsResult& a,
                            const serve::WorkloadStatsResult& b) {
  // Cycle accounting is part of the response, so it is held to the
  // same bit-identity bar as the payload.
  ASSERT_EQ(a.cycles, b.cycles);
  ASSERT_EQ(a.initiations, b.initiations);
  ASSERT_EQ(a.hazard_stall_cycles, b.hazard_stall_cycles);
  ASSERT_EQ(a.forwarded, b.forwarded);
  ASSERT_EQ(a.skipped, b.skipped);
}

void expect_identical(const ServedResults& a, const ServedResults& b,
                      const std::vector<RequestItem>& items) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    SCOPED_TRACE(::testing::Message()
                 << "request " << i << " kind="
                 << serve::to_string(items[i].kind));
    switch (items[i].kind) {
      case serve::RequestKind::kGamma:
        ASSERT_EQ(a.gamma[i].id, b.gamma[i].id);
        ASSERT_EQ(a.gamma[i].attempts, b.gamma[i].attempts);
        // Bit-identity: the float vectors must match exactly.
        ASSERT_EQ(a.gamma[i].samples, b.gamma[i].samples);
        break;
      case serve::RequestKind::kCreditRisk:
        ASSERT_EQ(a.credit[i].id, b.credit[i].id);
        ASSERT_EQ(a.credit[i].mean, b.credit[i].mean);
        ASSERT_EQ(a.credit[i].variance, b.credit[i].variance);
        ASSERT_EQ(a.credit[i].var95, b.credit[i].var95);
        ASSERT_EQ(a.credit[i].var999, b.credit[i].var999);
        ASSERT_EQ(a.credit[i].es999, b.credit[i].es999);
        break;
      case serve::RequestKind::kHistogram:
        ASSERT_EQ(a.histogram[i].bins, b.histogram[i].bins);
        expect_identical_stats(a.histogram[i].stats, b.histogram[i].stats);
        break;
      case serve::RequestKind::kSpmv:
        ASSERT_EQ(a.spmv[i].y, b.spmv[i].y);
        ASSERT_EQ(a.spmv[i].nnz, b.spmv[i].nnz);
        expect_identical_stats(a.spmv[i].stats, b.spmv[i].stats);
        break;
      case serve::RequestKind::kMatching:
        ASSERT_EQ(a.matching[i].match, b.matching[i].match);
        ASSERT_EQ(a.matching[i].pairs, b.matching[i].pairs);
        ASSERT_EQ(a.matching[i].edges_examined, b.matching[i].edges_examined);
        expect_identical_stats(a.matching[i].stats, b.matching[i].stats);
        break;
    }
  }
}

// ---------------------------------------------------------------------
// Cross-shard determinism matrix
// ---------------------------------------------------------------------

struct MatrixCell {
  std::size_t shards;
  serve::RouterPolicy policy;
  bool steal;
  bool resident;
  unsigned threads;  // exec pool size for the cell
};

TEST(ClusterDeterminism, MatrixBitIdenticalAcrossShardsPoliciesStealResident) {
  ThreadCountGuard guard;
  const auto items = mixed_request_set();

  serve::ClusterConfig base;
  base.shard.server_seed = 42;
  base.shard.queue_capacity = items.size() + 1;
  // Heterogeneous device bindings, cycled across shards: WHERE a
  // request lands (which shard, which accelerator model) must be
  // invisible in the bytes.
  base.devices = {minicl::BackendKind::kFpga, minicl::BackendKind::kCpu,
                  minicl::BackendKind::kGpu, minicl::BackendKind::kPhi};

  // Reference: one shard, no stealing, classic path, one thread.
  exec::set_thread_count(1);
  ServedResults reference;
  {
    serve::ClusterConfig cfg = base;
    cfg.num_shards = 1;
    cfg.steal = false;
    serve::ShardedSamplingServer cluster(cfg);
    reference = serve_set(cluster, items);
  }

  const MatrixCell cells[] = {
      // Shard-count sweep at defaults (hash routing, steal on).
      {1, serve::RouterPolicy::kConsistentHash, true, false, 1},
      {2, serve::RouterPolicy::kConsistentHash, true, false, 1},
      {4, serve::RouterPolicy::kConsistentHash, true, false, 1},
      {8, serve::RouterPolicy::kConsistentHash, true, false, 1},
      // Each remaining dimension flipped at 4 shards.
      {4, serve::RouterPolicy::kLeastLoaded, true, false, 1},
      {4, serve::RouterPolicy::kConsistentHash, false, false, 1},
      {4, serve::RouterPolicy::kConsistentHash, true, true, 1},
      {4, serve::RouterPolicy::kConsistentHash, true, false, 4},
      // Everything at once.
      {2, serve::RouterPolicy::kLeastLoaded, false, true, 4},
      {8, serve::RouterPolicy::kLeastLoaded, true, true, 2},
  };

  for (const MatrixCell& cell : cells) {
    exec::set_thread_count(cell.threads);
    serve::ClusterConfig cfg = base;
    cfg.num_shards = cell.shards;
    cfg.policy = cell.policy;
    cfg.steal = cell.steal;
    cfg.shard.resident = cell.resident;
    serve::ShardedSamplingServer cluster(cfg);
    const ServedResults got = serve_set(cluster, items);
    SCOPED_TRACE(::testing::Message()
                 << "shards=" << cell.shards << " policy="
                 << serve::to_string(cell.policy) << " steal=" << cell.steal
                 << " resident=" << cell.resident
                 << " threads=" << cell.threads);
    expect_identical(reference, got, items);

    const serve::ClusterSnapshot snap = cluster.metrics();
    EXPECT_EQ(snap.submitted, items.size());
    EXPECT_EQ(snap.admitted, items.size());
    EXPECT_EQ(snap.rejected_full, 0u);
    // Every admitted request was mirrored onto exactly one device.
    std::uint64_t launches = 0;
    std::uint64_t placed = 0;
    for (const serve::ShardSnapshot& s : snap.shards) {
      launches += s.modeled_launches;
      placed += s.routed_primary + s.stolen_in;
    }
    EXPECT_EQ(launches, items.size());
    EXPECT_EQ(placed, items.size());
  }
}

TEST(ClusterDeterminism, CounterBasedMatrixMatchesSingleShard) {
  ThreadCountGuard guard;
  exec::set_thread_count(2);
  const auto items = mixed_request_set();

  serve::ClusterConfig cfg;
  cfg.shard.server_seed = 7;
  cfg.shard.queue_capacity = items.size() + 1;
  cfg.shard.stream_strategy = rng::StreamStrategy::kCounterBased;

  cfg.num_shards = 1;
  ServedResults reference;
  {
    serve::ShardedSamplingServer cluster(cfg);
    reference = serve_set(cluster, items);
  }
  for (const std::size_t shards : {2u, 4u, 8u}) {
    cfg.num_shards = shards;
    cfg.shard.resident = (shards == 4);  // one resident cell here too
    serve::ShardedSamplingServer cluster(cfg);
    SCOPED_TRACE(::testing::Message() << "shards=" << shards);
    expect_identical(reference, serve_set(cluster, items), items);
  }
}

// ---------------------------------------------------------------------
// Consistent-hash ring properties
// ---------------------------------------------------------------------

TEST(ConsistentHashRing, BalanceWithinBounds) {
  serve::ConsistentHashRing ring(64);
  const std::size_t shards = 8;
  for (std::size_t s = 0; s < shards; ++s) ring.add_shard(s);

  const std::size_t keys = 20'000;
  std::vector<std::size_t> hits(shards, 0);
  for (std::size_t k = 0; k < keys; ++k) ++hits[ring.shard_for(k)];

  const double mean = static_cast<double>(keys) / shards;
  for (std::size_t s = 0; s < shards; ++s) {
    // 64 vnodes per shard keeps arc-length variance modest; the hash is
    // fixed, so these bounds are deterministic, not statistical.
    EXPECT_GT(hits[s], mean / 2.5) << "shard " << s << " starved";
    EXPECT_LT(hits[s], mean * 2.5) << "shard " << s << " overloaded";
  }
}

TEST(ConsistentHashRing, AddingShardRemapsOnlyToTheNewShard) {
  serve::ConsistentHashRing before(64);
  serve::ConsistentHashRing after(64);
  for (std::size_t s = 0; s < 4; ++s) {
    before.add_shard(s);
    after.add_shard(s);
  }
  after.add_shard(4);

  const std::size_t keys = 10'000;
  std::size_t moved = 0;
  for (std::size_t k = 0; k < keys; ++k) {
    const std::size_t a = before.shard_for(k);
    const std::size_t b = after.shard_for(k);
    if (a != b) {
      // A key may only move TO the new shard — everything else is owned
      // by the same vnode arc it was owned by before.
      EXPECT_EQ(b, 4u) << "key " << k << " moved " << a << "->" << b;
      ++moved;
    }
  }
  // Expected share of the new shard is 1/5 of the keys; minimal remap
  // means the moved fraction is near that, not near 1.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, keys * 2 / 5);
}

TEST(ConsistentHashRing, RemovingShardStrandsOnlyItsKeys) {
  serve::ConsistentHashRing before(64);
  serve::ConsistentHashRing after(64);
  for (std::size_t s = 0; s < 5; ++s) {
    before.add_shard(s);
    after.add_shard(s);
  }
  after.remove_shard(2);
  EXPECT_EQ(after.num_shards(), 4u);

  const std::size_t keys = 10'000;
  for (std::size_t k = 0; k < keys; ++k) {
    const std::size_t a = before.shard_for(k);
    const std::size_t b = after.shard_for(k);
    if (a != 2) {
      // Keys not owned by the removed shard must not move at all.
      EXPECT_EQ(a, b) << "key " << k;
    } else {
      EXPECT_NE(b, 2u) << "key " << k << " still on removed shard";
    }
  }
}

TEST(ConsistentHashRing, PreferenceOrderStartsAtOwnerAndCoversAllShards) {
  serve::ConsistentHashRing ring(32);
  for (std::size_t s = 0; s < 6; ++s) ring.add_shard(s);
  for (std::uint64_t key = 0; key < 500; ++key) {
    const std::vector<std::size_t> order = ring.preference_order(key);
    ASSERT_EQ(order.size(), 6u);
    EXPECT_EQ(order.front(), ring.shard_for(key));
    std::vector<std::size_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t s = 0; s < 6; ++s) EXPECT_EQ(sorted[s], s);
  }
}

// ---------------------------------------------------------------------
// Router backpressure: typed kQueueFull, retry-on-next-shard
// ---------------------------------------------------------------------

/// Saturate the primary shard for `id`: one heavy blocker occupying its
/// scheduler plus queue_capacity queued requests behind it. Returns the
/// admitted futures.
std::vector<std::future<serve::CreditRiskResult>> saturate_primary(
    serve::ShardedSamplingServer& cluster, serve::RequestId id,
    std::uint64_t heavy_scenarios) {
  serve::CreditRiskRequest req;
  req.id = id;
  req.portfolio = test_portfolio();
  req.num_scenarios = heavy_scenarios;

  std::vector<std::future<serve::CreditRiskResult>> futures;
  futures.push_back(cluster.submit(req));

  // Wait for the shard's dispatcher to pop the blocker; from here it is
  // busy for a long while and everything below queues behind it.
  serve::SamplingServer& primary =
      cluster.shard(cluster.placement_order(id)[0]);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (primary.queue_depth() != 0) {
    if (std::chrono::steady_clock::now() >= deadline) {
      ADD_FAILURE() << "blocker never dispatched";
      return futures;
    }
    std::this_thread::yield();
  }
  for (std::size_t i = 0; i < cluster.config().shard.queue_capacity; ++i) {
    futures.push_back(cluster.submit(req));
  }
  return futures;
}

serve::ClusterConfig backpressure_config(bool steal) {
  serve::ClusterConfig cfg;
  cfg.num_shards = 2;
  cfg.steal = steal;
  cfg.shard.queue_capacity = 2;
  cfg.shard.batching = false;  // the blocker must occupy the shard alone
  return cfg;
}

TEST(ClusterBackpressure, FullShardReturnsTypedQueueFullWithoutStealing) {
  ThreadCountGuard guard;
  exec::set_thread_count(1);
  serve::ShardedSamplingServer cluster(backpressure_config(false));

  const serve::RequestId id = 77;
  auto futures = saturate_primary(cluster, id, 20'000);

  serve::CreditRiskRequest overflow;
  overflow.id = id;
  overflow.portfolio = test_portfolio();
  overflow.num_scenarios = 20'000;
  std::future<serve::CreditRiskResult> f;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(cluster.try_submit(overflow, &f), serve::ServeStatus::kQueueFull);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Rejected fast and typed — the router never blocks the caller.
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 1.0);

  const serve::ClusterSnapshot snap = cluster.metrics();
  EXPECT_EQ(snap.rejected_full, 1u);
  EXPECT_EQ(snap.stolen, 0u);
  EXPECT_EQ(snap.admitted, futures.size());

  // No silent drop: every admitted future is fulfilled with a real
  // result, and — same id, same seed — all results are byte-identical.
  const serve::CreditRiskResult first = futures[0].get();
  for (std::size_t i = 1; i < futures.size(); ++i) {
    const serve::CreditRiskResult r = futures[i].get();
    EXPECT_EQ(r.mean, first.mean);
    EXPECT_EQ(r.var999, first.var999);
  }
}

TEST(ClusterBackpressure, StealRetriesNextShardWhenPrimaryIsFull) {
  ThreadCountGuard guard;
  exec::set_thread_count(1);
  serve::ShardedSamplingServer cluster(backpressure_config(true));

  const serve::RequestId id = 77;
  auto futures = saturate_primary(cluster, id, 20'000);
  const std::vector<std::size_t> order = cluster.placement_order(id);

  serve::CreditRiskRequest overflow;
  overflow.id = id;
  overflow.portfolio = test_portfolio();
  overflow.num_scenarios = 20'000;
  std::future<serve::CreditRiskResult> stolen_future;
  // Primary full -> retry-on-next-shard admits on the secondary.
  ASSERT_EQ(cluster.try_submit(overflow, &stolen_future),
            serve::ServeStatus::kAdmitted);

  const serve::ClusterSnapshot snap = cluster.metrics();
  EXPECT_EQ(snap.stolen, 1u);
  EXPECT_EQ(snap.rejected_full, 0u);
  EXPECT_EQ(snap.shards[order[1]].stolen_in, 1u);
  EXPECT_EQ(snap.shards[order[1]].routed_primary, 0u);

  // The stolen response is byte-identical to the primary's — placement
  // is invisible in the bytes.
  const serve::CreditRiskResult primary_result = futures[0].get();
  const serve::CreditRiskResult stolen_result = stolen_future.get();
  EXPECT_EQ(stolen_result.mean, primary_result.mean);
  EXPECT_EQ(stolen_result.variance, primary_result.variance);
  EXPECT_EQ(stolen_result.var95, primary_result.var95);
  EXPECT_EQ(stolen_result.var999, primary_result.var999);
  EXPECT_EQ(stolen_result.es999, primary_result.es999);
  for (std::size_t i = 1; i < futures.size(); ++i) futures[i].get();
}

TEST(ClusterRouting, LeastLoadedPrefersTheIdleShard) {
  ThreadCountGuard guard;
  exec::set_thread_count(1);
  serve::ClusterConfig cfg;
  cfg.num_shards = 2;
  cfg.policy = serve::RouterPolicy::kLeastLoaded;
  cfg.shard.queue_capacity = 8;
  cfg.shard.batching = false;
  serve::ShardedSamplingServer cluster(cfg);

  serve::CreditRiskRequest heavy;
  heavy.id = 1;
  heavy.portfolio = test_portfolio();
  heavy.num_scenarios = 20'000;

  // Empty cluster: depths tie, lowest index wins.
  EXPECT_EQ(cluster.placement_order(1)[0], 0u);
  auto blocker = cluster.submit(heavy);  // -> shard 0
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (cluster.shard(0).queue_depth() != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::yield();
  }
  auto queued = cluster.submit(heavy);  // -> shard 0, stays queued
  // Shard 0 now has queued work; the next placement prefers shard 1.
  EXPECT_EQ(cluster.placement_order(2)[0], 1u);
  blocker.get();
  queued.get();
}

TEST(ClusterLifecycle, ShutdownDrainsAllShardsAndRejectsLate) {
  ThreadCountGuard guard;
  exec::set_thread_count(2);
  serve::ClusterConfig cfg;
  cfg.num_shards = 4;
  serve::ShardedSamplingServer cluster(cfg);

  std::vector<std::future<serve::GammaResult>> futures;
  for (std::uint64_t i = 0; i < 16; ++i) {
    serve::GammaRequest req;
    req.id = i + 1;
    req.count = 64;
    futures.push_back(cluster.submit(req));
  }
  cluster.shutdown();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::GammaResult r = futures[i].get();
    EXPECT_EQ(r.id, i + 1);
    EXPECT_EQ(r.samples.size(), 64u);
  }
  serve::GammaRequest late;
  late.id = 999;
  late.count = 8;
  std::future<serve::GammaResult> f;
  EXPECT_EQ(cluster.try_submit(late, &f),
            serve::ServeStatus::kShuttingDown);
  EXPECT_EQ(cluster.metrics().rejected_shutdown, 1u);
}

TEST(ClusterValidation, InvalidRequestRejectsThroughRouter) {
  serve::ShardedSamplingServer cluster{serve::ClusterConfig{}};
  serve::GammaRequest bad;
  bad.id = 1;
  bad.count = 0;  // invalid
  std::future<serve::GammaResult> f;
  EXPECT_EQ(cluster.try_submit(bad, &f), serve::ServeStatus::kInvalidRequest);
  EXPECT_EQ(cluster.metrics().rejected_invalid, 1u);
  EXPECT_EQ(cluster.metrics().admitted, 0u);
}

// ---------------------------------------------------------------------
// Offline reproduction at cluster scope (Philox::seek)
// ---------------------------------------------------------------------

TEST(ClusterOfflineReproduction, SeekRecomputesServedResponsesByteExact) {
  ThreadCountGuard guard;
  exec::set_thread_count(2);
  serve::ClusterConfig cfg;
  cfg.num_shards = 4;
  cfg.shard.server_seed = 42;
  cfg.shard.stream_strategy = rng::StreamStrategy::kCounterBased;
  serve::ShardedSamplingServer cluster(cfg);

  serve::GammaRequest greq;
  greq.id = 31337;
  greq.alpha = 1.5f;
  greq.scale = 2.0f;
  greq.count = 500;
  const serve::GammaResult served_gamma = cluster.run(greq);

  serve::CreditRiskRequest creq;
  creq.id = 424242;
  creq.portfolio = test_portfolio();
  creq.num_scenarios = 200;
  const serve::CreditRiskResult served_credit = cluster.run(creq);
  cluster.shutdown();

  // Gamma: rebuild the request's uniform tape from scratch — a fresh
  // Philox seeked to the request's substream base, no cluster state.
  {
    rng::Philox px(cfg.shard.server_seed);
    px.seek(greq.id * cfg.shard.substreams_per_request *
            cfg.shard.substream_stride);
    rng::GammaSampler sampler(
        rng::GammaConstants::make(greq.alpha, greq.scale), greq.transform);
    std::vector<float> expect(greq.count);
    sampler.sample_block(px, expect.data(), expect.size());
    EXPECT_EQ(served_gamma.samples, expect);
    EXPECT_EQ(served_gamma.attempts, sampler.attempts());
  }

  // CreditRisk+: recompute the full response on the cluster's stream
  // accessors (shard-independent by construction).
  {
    const finance::Portfolio& portfolio = *creq.portfolio;
    struct SectorStream {
      rng::GammaSampler sampler;
      rng::Philox px;
    };
    std::vector<SectorStream> streams;
    for (std::size_t k = 0; k < portfolio.num_sectors(); ++k) {
      streams.push_back(SectorStream{
          rng::GammaSampler(rng::GammaConstants::from_sector_variance(
                                static_cast<float>(
                                    portfolio.sectors()[k].variance)),
                            rng::NormalTransform::kMarsagliaBray),
          cluster.sector_counter_stream(creq.id, k)});
    }
    const finance::GammaSource source =
        [&streams](std::uint64_t, std::size_t sector) -> double {
      SectorStream& s = streams[sector];
      return static_cast<double>(
          s.sampler.sample([&s] { return s.px.next(); }));
    };
    finance::McConfig mc;
    mc.num_scenarios = creq.num_scenarios;
    mc.seed = cluster.poisson_seed(creq.id);
    const finance::LossDistribution dist =
        finance::simulate_losses(portfolio, mc, source);
    EXPECT_EQ(served_credit.mean, dist.mean());
    EXPECT_EQ(served_credit.variance, dist.variance());
    EXPECT_EQ(served_credit.var95, dist.value_at_risk(0.95));
    EXPECT_EQ(served_credit.var999, dist.value_at_risk(0.999));
    EXPECT_EQ(served_credit.es999, dist.expected_shortfall(0.999));
  }
}

// ---------------------------------------------------------------------
// Resident pipe stall counters in the metrics snapshot
// ---------------------------------------------------------------------

void expect_monotone(const serve::PipeStallCounters& a,
                     const serve::PipeStallCounters& b) {
  EXPECT_GE(b.admission_write_stalls, a.admission_write_stalls);
  EXPECT_GE(b.admission_read_stalls, a.admission_read_stalls);
  EXPECT_GE(b.handoff_write_stalls, a.handoff_write_stalls);
  EXPECT_GE(b.handoff_read_stalls, a.handoff_read_stalls);
  EXPECT_GE(b.rows_write_stalls, a.rows_write_stalls);
  EXPECT_GE(b.rows_read_stalls, a.rows_read_stalls);
}

TEST(ResidentPipeStalls, MonotoneAndSurfacedInResidentSnapshots) {
  ThreadCountGuard guard;
  exec::set_thread_count(1);
  serve::ServeConfig cfg;
  cfg.resident = true;
  cfg.resident_row_block = 1;  // one pipe transfer per scenario row
  cfg.resident_pipe_depth = 1;
  serve::SamplingServer server(cfg);

  serve::CreditRiskRequest req;
  req.portfolio = test_portfolio();
  req.num_scenarios = 256;
  req.id = 1;
  server.run(req);

  const serve::MetricsSnapshot s1 = server.metrics();
  EXPECT_TRUE(s1.resident);
  // The resident kernels block on their empty input pipes at startup,
  // so a served request implies at least those read stalls.
  EXPECT_GT(s1.resident_pipes.total(), 0u);

  req.id = 2;
  server.run(req);
  const serve::MetricsSnapshot s2 = server.metrics();
  expect_monotone(s1.resident_pipes, s2.resident_pipes);
  EXPECT_GE(s2.resident_pipes.total(), s1.resident_pipes.total());

  // The cluster snapshot carries the same counters per shard.
  serve::ClusterConfig ccfg;
  ccfg.num_shards = 2;
  ccfg.shard = cfg;
  serve::ShardedSamplingServer cluster(ccfg);
  req.id = 3;
  cluster.run(req);
  const serve::ClusterSnapshot snap = cluster.metrics();
  std::uint64_t total = 0;
  for (const serve::ShardSnapshot& shard : snap.shards) {
    EXPECT_TRUE(shard.metrics.resident);
    total += shard.metrics.resident_pipes.total();
  }
  EXPECT_GT(total, 0u);
}

TEST(ResidentPipeStalls, ZeroInClassicMode) {
  ThreadCountGuard guard;
  exec::set_thread_count(1);
  serve::SamplingServer server{serve::ServeConfig{}};  // resident off

  serve::CreditRiskRequest req;
  req.portfolio = test_portfolio();
  req.num_scenarios = 64;
  req.id = 1;
  server.run(req);

  const serve::MetricsSnapshot s = server.metrics();
  EXPECT_FALSE(s.resident);
  EXPECT_EQ(s.resident_pipes.total(), 0u);
  EXPECT_EQ(s.resident_pipes.admission_write_stalls, 0u);
  EXPECT_EQ(s.resident_pipes.rows_read_stalls, 0u);
}

// ---------------------------------------------------------------------
// Shard backends
// ---------------------------------------------------------------------

TEST(ShardBackend, FreshDevicePerShardAccumulatesModeledTime) {
  auto fpga = minicl::make_shard_backend(minicl::BackendKind::kFpga, 0);
  auto cpu = minicl::make_shard_backend(minicl::BackendKind::kCpu, 1);
  EXPECT_NE(fpga->name(), cpu->name());
  EXPECT_EQ(fpga->modeled_launches(), 0u);

  fpga->account(4096, 1.39f);
  const double once = fpga->modeled_busy_seconds();
  EXPECT_GT(once, 0.0);
  fpga->account(4096, 1.39f);  // memoized shape: same time again
  EXPECT_EQ(fpga->modeled_launches(), 2u);
  EXPECT_DOUBLE_EQ(fpga->modeled_busy_seconds(), 2.0 * once);

  cpu->account(4096, 1.39f);
  EXPECT_GT(cpu->modeled_busy_seconds(), 0.0);
  // Independent instances: the FPGA's account is untouched.
  EXPECT_DOUBLE_EQ(fpga->modeled_busy_seconds(), 2.0 * once);
}

TEST(ShardBackend, EstimateSecondsPricesWithoutAccounting) {
  auto backend = minicl::make_shard_backend(minicl::BackendKind::kFpga, 0);
  const double est = backend->estimate_seconds(4096, 1.39f);
  EXPECT_GT(est, 0.0);
  // Pure pricing: the capacity planner must be able to ask "how fast is
  // this device" without polluting the shard's busy-time ledger.
  EXPECT_EQ(backend->modeled_launches(), 0u);
  EXPECT_DOUBLE_EQ(backend->modeled_busy_seconds(), 0.0);
  // And it must agree with what account() would have charged.
  backend->account(4096, 1.39f);
  EXPECT_DOUBLE_EQ(backend->modeled_busy_seconds(), est);
}

// ---------------------------------------------------------------------
// Capacity-derived admission + response cache at cluster scope
// ---------------------------------------------------------------------

TEST(ClusterDeterminism, CapacityPlansAndCacheCannotMoveBits) {
  // The tuning-on cluster derives per-shard admission bounds from
  // heterogeneous capacity plans AND serves repeats from the per-shard
  // response cache; every response must stay bit-identical to the
  // constants-only, cache-off cluster.
  ThreadCountGuard guard;
  exec::set_thread_count(2);
  const auto items = mixed_request_set();

  serve::ClusterConfig plain;
  plain.num_shards = 4;
  ServedResults reference;
  {
    serve::ShardedSamplingServer cluster(plain);
    reference = serve_set(cluster, items);
  }

  serve::ClusterConfig tuned = plain;
  tuned.shard.response_cache_entries = 64;
  serve::CapacityPlan fast, slow;
  fast.modeled_rps = 20000.0;
  fast.device = "fast-device";
  slow.modeled_rps = 5000.0;
  slow.device = "slow-device";
  tuned.shard_capacity = {fast, slow};  // cycled across the 4 shards
  serve::ShardedSamplingServer cluster(tuned);
  // Per-shard bounds really did diverge by plan before any traffic.
  EXPECT_EQ(cluster.shard(0).config().queue_capacity, 1000u);
  EXPECT_EQ(cluster.shard(1).config().queue_capacity, 250u);
  EXPECT_EQ(cluster.shard(2).config().queue_capacity, 1000u);

  const ServedResults first = serve_set(cluster, items);
  const ServedResults repeat = serve_set(cluster, items);  // cache hits
  expect_identical(reference, first, items);
  expect_identical(reference, repeat, items);

  std::uint64_t hits = 0;
  const serve::ClusterSnapshot snap = cluster.metrics();
  for (const serve::ShardSnapshot& shard : snap.shards) {
    hits += shard.metrics.cache_hits;
  }
  EXPECT_EQ(hits, items.size());  // the whole second pass was served hot
}

TEST(ClusterCache, HitSkipsTheModeledDeviceAccount) {
  // A cached answer never reaches the device, so the router must not
  // charge the shard's modeled-occupancy ledger for it.
  serve::ClusterConfig cfg;
  cfg.num_shards = 2;
  cfg.shard.response_cache_entries = 16;
  serve::ShardedSamplingServer cluster(cfg);

  serve::GammaRequest req;
  req.id = 99;
  req.alpha = 1.39f;
  req.scale = 1.0f;
  req.count = 129;
  (void)cluster.run(req);

  const auto launches = [&] {
    std::uint64_t total = 0;
    for (const auto& shard : cluster.metrics().shards) {
      total += shard.modeled_launches;
    }
    return total;
  };
  const std::uint64_t after_first = launches();
  EXPECT_EQ(after_first, 1u);

  (void)cluster.run(req);  // served from the shard's cache
  EXPECT_EQ(launches(), after_first);
  const serve::ClusterSnapshot snap = cluster.metrics();
  EXPECT_EQ(snap.submitted, 2u);
  std::uint64_t hits = 0;
  for (const auto& shard : snap.shards) hits += shard.metrics.cache_hits;
  EXPECT_EQ(hits, 1u);
}

}  // namespace
}  // namespace dwi
