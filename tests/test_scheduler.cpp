// Tests for the modulo-scheduling model (fpga/scheduler): RecMII /
// ResMII theory on hand-built graphs, schedule validity, and the
// derived II of the Listing 2 main loop with and without the
// delayed-counter workaround (must agree with the closed-form model in
// core/delayed_counter.h).
#include <gtest/gtest.h>

#include "core/delayed_counter.h"
#include "fpga/scheduler.h"

namespace dwi::fpga {
namespace {

TEST(Scheduler, AcyclicGraphIsIi1) {
  DependenceGraph g;
  const auto a = g.add_operation("a", 5);
  const auto b = g.add_operation("b", 3);
  const auto c = g.add_operation("c", 7);
  g.add_dependence(a, b);
  g.add_dependence(b, c);
  EXPECT_EQ(g.recurrence_mii(), 1u);
  EXPECT_TRUE(g.feasible_at(1));
}

TEST(Scheduler, SimpleRecurrence) {
  // x(k) = f(x(k-1)) with f latency L: II = L.
  for (unsigned latency : {1u, 2u, 5u}) {
    DependenceGraph g;
    const auto f = g.add_operation("f", latency);
    g.add_dependence(f, f, 1);
    EXPECT_EQ(g.recurrence_mii(), latency) << "latency " << latency;
  }
}

TEST(Scheduler, DistanceDividesLatency) {
  // Recurrence latency 6 at distance d: II = ceil(6/d).
  for (unsigned d : {1u, 2u, 3u, 6u, 7u}) {
    DependenceGraph g;
    const auto f = g.add_operation("f", 6);
    g.add_dependence(f, f, d);
    EXPECT_EQ(g.recurrence_mii(), (6 + d - 1) / d) << "distance " << d;
  }
}

TEST(Scheduler, MultiOpCycle) {
  // a(1) -> b(2) -> c(3) -> a with one unit of total distance: II = 6.
  DependenceGraph g;
  const auto a = g.add_operation("a", 1);
  const auto b = g.add_operation("b", 2);
  const auto c = g.add_operation("c", 3);
  g.add_dependence(a, b);
  g.add_dependence(b, c);
  g.add_dependence(c, a, 1);
  EXPECT_EQ(g.recurrence_mii(), 6u);
  // Splitting the distance over two edges halves it.
  DependenceGraph g2;
  const auto a2 = g2.add_operation("a", 1);
  const auto b2 = g2.add_operation("b", 2);
  const auto c2 = g2.add_operation("c", 3);
  g2.add_dependence(a2, b2, 1);
  g2.add_dependence(b2, c2);
  g2.add_dependence(c2, a2, 1);
  EXPECT_EQ(g2.recurrence_mii(), 3u);
}

TEST(Scheduler, ResourceMii) {
  DependenceGraph g;
  g.add_operation("m1", 1, "dsp_mul");
  g.add_operation("m2", 1, "dsp_mul");
  g.add_operation("m3", 1, "dsp_mul");
  g.add_operation("x", 1);  // unconstrained
  EXPECT_EQ(g.resource_mii({{"dsp_mul", 1}}), 3u);
  EXPECT_EQ(g.resource_mii({{"dsp_mul", 2}}), 2u);
  EXPECT_EQ(g.resource_mii({{"dsp_mul", 3}}), 1u);
  EXPECT_EQ(g.resource_mii({}), 1u);  // unlisted = enough instances
}

TEST(Scheduler, MiiIsMaxOfBoth) {
  DependenceGraph g;
  const auto f = g.add_operation("f", 4, "unit");
  g.add_dependence(f, f, 1);  // RecMII 4
  g.add_operation("g1", 1, "unit");
  g.add_operation("g2", 1, "unit");
  // ResMII with one instance = 3 uses / 1 = 3 < RecMII.
  EXPECT_EQ(g.min_initiation_interval({{"unit", 1}}), 4u);
}

TEST(Scheduler, ScheduleRespectsDependences) {
  DependenceGraph g;
  const auto a = g.add_operation("a", 5);
  const auto b = g.add_operation("b", 3);
  const auto c = g.add_operation("c", 2);
  g.add_dependence(a, b);
  g.add_dependence(a, c);
  g.add_dependence(b, c);
  const auto s = g.schedule_at(1);
  EXPECT_GE(s[b], s[a] + 5);
  EXPECT_GE(s[c], s[b] + 3);
  EXPECT_EQ(g.depth_at(1), s[c] + 2);
}

TEST(Scheduler, InfeasibleIiRejected) {
  DependenceGraph g;
  const auto f = g.add_operation("f", 4);
  g.add_dependence(f, f, 1);
  EXPECT_FALSE(g.feasible_at(3));
  EXPECT_TRUE(g.feasible_at(4));
  EXPECT_THROW(g.schedule_at(3), dwi::Error);
}

TEST(Scheduler, GammaMainloopNaiveCounterIi2) {
  // Listing 2 without the workaround: the counter recurrence forces
  // II = 2 — the "hindered initiation interval" of §II-E.
  const auto g = gamma_mainloop_graph(/*counter_delay=*/1, true);
  EXPECT_EQ(g.min_initiation_interval(), 2u);
}

TEST(GammaMainloop, DelayedCounterRecoversIi1) {
  // breakId = 0 gives distance 2: II = 1 for both transform variants.
  for (bool mb : {true, false}) {
    const auto g = gamma_mainloop_graph(/*counter_delay=*/2, mb);
    EXPECT_EQ(g.min_initiation_interval(), 1u) << "mb=" << mb;
  }
}

TEST(GammaMainloop, AgreesWithClosedFormModel) {
  // The graph-derived II must equal core::achieved_initiation_interval
  // for every delay the ablation sweeps.
  for (unsigned delay = 0; delay <= 3; ++delay) {
    const auto g = gamma_mainloop_graph(delay + 1, true);
    EXPECT_EQ(g.min_initiation_interval(),
              core::achieved_initiation_interval(2, delay))
        << "delay " << delay;
  }
}

TEST(GammaMainloop, PipelineDepthReasonable) {
  // The full datapath at II = 1 spans tens of cycles (the pipeline
  // latency the kernel simulator charges once at startup).
  const auto g = gamma_mainloop_graph(2, true);
  const unsigned depth = g.depth_at(1);
  EXPECT_GT(depth, 50u);
  EXPECT_LT(depth, 200u);
}

}  // namespace
}  // namespace dwi::fpga
