// API-contract sweep: every public entry point rejects invalid inputs
// with dwi::Error (never UB, never silent acceptance), and the
// DEPENDENCE-false assertion of Listing 4 actually holds for the
// access patterns the transfer unit generates (the promise made in
// hls/pragmas.h).
#include <gtest/gtest.h>

#include <thread>

#include "common/error.h"
#include "core/decoupled_work_items.h"
#include "core/fpga_app.h"
#include "core/gamma_work_item.h"
#include "finance/creditrisk_plus.h"
#include "fpga/kernel_sim.h"
#include "fpga/scheduler.h"
#include "hls/stream.h"
#include "minicl/runtime.h"
#include "power/trace.h"
#include "rng/gamma.h"
#include "rng/mersenne_twister.h"
#include "stats/distributions.h"
#include "stats/histogram.h"
#include "stats/ks_test.h"

namespace dwi {
namespace {

TEST(ApiContracts, StatsRejectInvalidInputs) {
  EXPECT_THROW(stats::Histogram(1.0, 1.0, 10), Error);
  EXPECT_THROW(stats::Histogram(0.0, 1.0, 0), Error);
  EXPECT_THROW(stats::ks_test(std::span<const double>{},
                              [](double) { return 0.5; }),
               Error);
  EXPECT_THROW(stats::gamma_pdf(1.0, -1.0, 1.0), Error);
  EXPECT_THROW(stats::gamma_quantile(1.5, 1.0, 1.0), Error);
}

TEST(ApiContracts, RngRejectsInvalidGeometry) {
  rng::MtParams p = rng::mt521_params();
  p.r = 0;
  EXPECT_THROW(rng::MersenneTwister{p}, Error);
  p = rng::mt521_params();
  p.m = 0;
  EXPECT_THROW(rng::MersenneTwister{p}, Error);
  EXPECT_THROW(rng::GammaConstants::make(-1.0f), Error);
}

TEST(ApiContracts, WorkItemConfigValidated) {
  core::GammaWorkItemConfig cfg;
  cfg.sector_variances = {};
  EXPECT_THROW(core::GammaWorkItem{cfg}, Error);
  cfg.sector_variances = {1.0f};
  cfg.outputs_per_sector = 0;
  EXPECT_THROW(core::GammaWorkItem{cfg}, Error);
}

TEST(ApiContracts, DecoupledTaskValidated) {
  core::DecoupledConfig cfg;
  cfg.work_items = 0;
  EXPECT_THROW(core::run_decoupled_work_items(
                   cfg, [](unsigned, hls::stream<float>&, std::uint64_t) {}),
               Error);
  cfg.work_items = 2;
  cfg.floats_per_work_item = 17;  // not beat-aligned
  EXPECT_THROW(core::run_decoupled_work_items(
                   cfg, [](unsigned, hls::stream<float>&, std::uint64_t) {}),
               Error);
}

TEST(ApiContracts, GammaTaskQuotaMismatchDetected) {
  core::DecoupledConfig cfg;
  cfg.work_items = 1;
  cfg.floats_per_work_item = 64;
  EXPECT_THROW(core::run_gamma_task(cfg,
                                    [](unsigned) {
                                      core::GammaWorkItemConfig w;
                                      w.outputs_per_sector = 32;  // != 64
                                      return w;
                                    }),
               Error);
}

TEST(ApiContracts, FpgaAppValidatesWorkload) {
  core::FpgaWorkload w;
  w.scale_divisor = 0;
  EXPECT_THROW(core::run_fpga_application(
                   rng::config(rng::ConfigId::kConfig1), w),
               Error);
}

TEST(ApiContracts, SchedulerValidates) {
  fpga::DependenceGraph g;
  EXPECT_THROW(g.add_operation("x", 0), Error);
  const auto a = g.add_operation("a", 1);
  EXPECT_THROW(g.add_dependence(a, 99), Error);
  EXPECT_THROW(g.feasible_at(0), Error);
  EXPECT_THROW(fpga::gamma_mainloop_graph(0, true), Error);
}

TEST(ApiContracts, PowerTraceValidates) {
  power::SystemPowerConfig cfg;
  EXPECT_THROW(power::simulate_trace(cfg, {}, 0.0), Error);
  const auto trace = power::simulate_trace(cfg, {}, 10.0);
  EXPECT_THROW(power::integrate_energy(trace, 5.0, 5.0), Error);
  EXPECT_THROW(power::integrate_energy(trace, 0.0, 100.0), Error);
  EXPECT_THROW(power::derive_dynamic_energy(cfg, trace, {}, 100.0), Error);
}

TEST(ApiContracts, MiniclValidates) {
  auto dev = minicl::find_device("FPGA");
  minicl::CommandQueue q(*dev);
  EXPECT_THROW(q.enqueue_read(100, minicl::BufferCombining::kHostLevel, 0),
               Error);
  EXPECT_THROW(minicl::find_device("no such accelerator"), Error);
}

TEST(ApiContracts, FinanceValidates) {
  const auto p = finance::Portfolio::synthetic(5, {{1.0, "s"}}, 1);
  finance::McConfig mc;
  mc.num_scenarios = 1;
  EXPECT_THROW(
      finance::simulate_losses(p, mc, finance::sampler_gamma_source(p, 1)),
      Error);
  EXPECT_THROW(finance::Portfolio::synthetic(0, {{1.0, "s"}}, 1), Error);
}

// --- the Listing 4 DEPENDENCE-false assertion --------------------------------

TEST(DependencePragma, TransferBufferAccessPatternHasNoInterIterationHazard) {
  // #pragma HLS DEPENDENCE variable=transfBuf inter false claims that
  // consecutive TLOOP iterations never touch the same buffer element.
  // Replay the transfer unit's write pattern and check the claimed
  // property: writes to transfBuf[i] are at least LTRANSF·16 (= one
  // full buffer of floats) iterations apart — far beyond any pipeline
  // depth, so the pragma is sound.
  constexpr unsigned kWordsPerBurst = 16;  // LTRANSF
  constexpr std::uint64_t kFloats = 16 * kWordsPerBurst * 8;
  std::vector<std::uint64_t> last_write(kWordsPerBurst, 0);
  unsigned lane = 0;
  unsigned i = 0;
  std::uint64_t min_gap = ~std::uint64_t{0};
  for (std::uint64_t iter = 1; iter <= kFloats; ++iter) {
    // One TLOOP trip = one float read; a write to transfBuf happens
    // when the 512-bit word completes.
    if (++lane == 16) {
      lane = 0;
      if (last_write[i] != 0) {
        min_gap = std::min(min_gap, iter - last_write[i]);
      }
      last_write[i] = iter;
      i = (i >= kWordsPerBurst - 1) ? 0u : i + 1u;
    }
  }
  EXPECT_GE(min_gap, 16u * kWordsPerBurst);  // 256 iterations apart
}

TEST(DependencePragma, StreamDepthNeverExceededUnderBackpressure) {
  // The hls::stream bound (the #pragma HLS STREAM depth) is a hard
  // invariant even under adversarial scheduling.
  hls::stream<int> s(3);
  std::thread consumer([&] {
    for (int i = 0; i < 20000; ++i) (void)s.read();
  });
  for (int i = 0; i < 20000; ++i) s.write(i);
  consumer.join();
  EXPECT_LE(s.peak_depth(), 3u);
}

}  // namespace
}  // namespace dwi
