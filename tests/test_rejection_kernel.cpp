// Tests for the generic rejection-kernel template (the §V claim as a
// library facility): quota exactness, delayed-counter behaviour,
// stream hygiene under rejection, and distribution correctness for two
// classic rejection samplers written as Attempt functors.
#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "common/bits.h"
#include "core/rejection_kernel.h"
#include "stats/distributions.h"
#include "stats/ks_test.h"
#include "stats/moments.h"

namespace dwi::core {
namespace {

/// Always-accepts attempt: a counter ramp.
struct RampAttempt {
  static constexpr unsigned kUniformSources = 1;
  float next = 0.0f;
  template <typename U>
  bool operator()(U&& u, float* value) {
    (void)u(0);
    *value = next;
    next += 1.0f;
    return true;
  }
};

/// Von Neumann's classic exponential sampler: accept u1 if the run of
/// descending uniforms after it has even length. Produces Exp(1)
/// restricted to [0,1) plus an integer offset — we use the simple
/// single-interval variant: accept u1 when u2 >= u1 (run length 1).
/// The accepted u1 has density 2(1-... — actually with the one-step
/// rule P(accept | u1) = 1 - u1, giving density 2(1 - u), a triangular
/// law we can test exactly.
struct TriangularAttempt {
  static constexpr unsigned kUniformSources = 2;
  template <typename U>
  bool operator()(U&& u, float* value) {
    const float u1 = uint2float_open0(u(0));
    const float u2 = uint2float_open0(u(1));
    if (u2 >= u1) {
      *value = u1;
      return true;
    }
    return false;
  }
};

/// Robert's tail-truncated normal (X ~ N(0,1) | X > a).
struct TruncatedNormalAttempt {
  static constexpr unsigned kUniformSources = 2;
  float a = 2.0f;
  template <typename U>
  bool operator()(U&& u, float* value) {
    const float lambda = (a + std::sqrt(a * a + 4.0f)) / 2.0f;
    const float x = a - std::log(uint2float_open0(u(0))) / lambda;
    const float rho = std::exp(-0.5f * (x - lambda) * (x - lambda));
    if (uint2float_open0(u(1)) <= rho) {
      *value = x;
      return true;
    }
    return false;
  }
};

TEST(RejectionKernel, ExactQuotaAndIterationAccounting) {
  RejectionKernelConfig cfg;
  cfg.quota = 500;
  RejectionWorkItem<RampAttempt> wi(cfg);
  std::uint64_t produced = 0;
  float v = 0.0f;
  while (!wi.finished()) {
    if (wi.produce(&v)) ++produced;
  }
  EXPECT_EQ(produced, 500u);
  EXPECT_EQ(wi.outputs(), 500u);
  // Always-valid attempt: iterations = quota + the breakId+1 harmless
  // extra trips of the delayed exit.
  EXPECT_EQ(wi.iterations(), 500u + cfg.break_id + 1u);
  EXPECT_DOUBLE_EQ(wi.rejection_rate(),
                   1.0 - 500.0 / static_cast<double>(wi.iterations()));
}

TEST(RejectionKernel, RampValuesUninterrupted) {
  // The guarded write must emit exactly the first `quota` ramp values.
  RejectionKernelConfig cfg;
  cfg.quota = 100;
  RejectionWorkItem<RampAttempt> wi(cfg);
  float v = 0.0f;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(wi.produce(&v));
    ASSERT_FLOAT_EQ(v, static_cast<float>(i));
  }
  // Delayed exit: breakId+1 harmless output-free iterations, then done.
  EXPECT_FALSE(wi.produce(&v));  // extra iteration, guarded write blocks
  EXPECT_FALSE(wi.produce(&v));  // exit fires
  EXPECT_TRUE(wi.finished());
}

TEST(RejectionKernel, TriangularLawExact) {
  // Accepted u1 with P(accept|u1) = 1 - u1 has CDF 2x - x² on [0,1].
  RejectionKernelConfig cfg;
  cfg.quota = 120'000;
  RejectionWorkItem<TriangularAttempt> wi(cfg);
  std::vector<double> xs;
  xs.reserve(cfg.quota);
  float v = 0.0f;
  while (!wi.finished()) {
    if (wi.produce(&v)) xs.push_back(static_cast<double>(v));
  }
  ASSERT_EQ(xs.size(), cfg.quota);
  EXPECT_NEAR(wi.rejection_rate(), 0.5, 0.01);  // E[u1] = 1/2
  const auto ks = stats::ks_test(std::span<const double>(xs), [](double x) {
    if (x < 0) return 0.0;
    if (x > 1) return 1.0;
    return 2.0 * x - x * x;
  });
  EXPECT_GT(ks.p_value, 1e-4) << "KS D=" << ks.statistic;
}

TEST(RejectionKernel, TruncatedNormalCorrect) {
  RejectionKernelConfig cfg;
  cfg.quota = 80'000;
  RejectionWorkItem<TruncatedNormalAttempt> wi(cfg);
  stats::RunningMoments m;
  std::vector<double> xs;
  float v = 0.0f;
  while (!wi.finished()) {
    if (wi.produce(&v)) {
      m.add(static_cast<double>(v));
      xs.push_back(static_cast<double>(v));
    }
  }
  const double a = 2.0;
  const double tail = 1.0 - stats::normal_cdf(a);
  EXPECT_GE(m.min(), a);
  EXPECT_NEAR(m.mean(), stats::normal_pdf(a) / tail, 0.005);
  const auto ks = stats::ks_test(std::span<const double>(xs), [&](double x) {
    if (x <= a) return 0.0;
    return (stats::normal_cdf(x) - stats::normal_cdf(a)) / tail;
  });
  EXPECT_GT(ks.p_value, 1e-4);
}

TEST(RejectionKernel, DistinctWorkItemsDecorrelated) {
  auto run = [](unsigned wid) {
    RejectionKernelConfig cfg;
    cfg.quota = 200;
    cfg.work_item_id = wid;
    RejectionWorkItem<TriangularAttempt> wi(cfg);
    std::vector<float> out;
    float v = 0.0f;
    while (!wi.finished()) {
      if (wi.produce(&v)) out.push_back(v);
    }
    return out;
  };
  const auto a = run(0);
  const auto b = run(1);
  int equal = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RejectionKernel, PlugsIntoTimingSimulation) {
  fpga::KernelSimConfig sim;
  sim.work_items = 4;
  sim.outputs_per_work_item = 4096;
  const auto r = fpga::simulate_kernel(sim, [](unsigned w) {
    RejectionKernelConfig cfg;
    cfg.quota = 4096;
    cfg.work_item_id = w;
    return std::make_unique<RejectionWorkItem<TriangularAttempt>>(cfg);
  });
  EXPECT_EQ(r.outputs, 4u * 4096u);
  EXPECT_NEAR(r.rejection_rate(), 0.5, 0.02);
}

TEST(RejectionKernel, ValidatesConfig) {
  RejectionKernelConfig cfg;
  cfg.quota = 0;
  EXPECT_THROW(RejectionWorkItem<RampAttempt>{cfg}, dwi::Error);
}

}  // namespace
}  // namespace dwi::core
