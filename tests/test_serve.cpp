// Serving-layer tests (src/serve):
//   * determinism contract: a fixed request set with a fixed server
//     seed yields bit-identical per-request results across thread
//     counts (1, 4, hardware), batching on/off, and shuffled
//     submission order;
//   * the served result equals the offline computation on the
//     request's substream (no hidden server state);
//   * backpressure: a full admission queue rejects fast with a typed
//     status, nothing admitted is ever dropped;
//   * graceful shutdown drains all in-flight work and rejects late
//     submissions;
//   * validation rejects malformed requests with kInvalidRequest;
//   * metrics: counters and nearest-rank latency percentiles;
//   * RingBuffer / SpscRingBuffer edge cases under the serve workload
//     shapes (job-sized payloads): full-queue rejection, wraparound at
//     capacity boundaries, destruction with items still enqueued.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/ring_buffer.h"
#include "common/spsc_ring_buffer.h"
#include "exec/thread_pool.h"
#include "finance/portfolio.h"
#include "rng/gamma.h"
#include "serve/batch_scheduler.h"
#include "serve/metrics.h"
#include "serve/sampling_server.h"
#include "workloads/histogram.h"
#include "workloads/matching.h"
#include "workloads/spmv.h"

namespace dwi {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { exec::set_thread_count(0); }
};

std::shared_ptr<const finance::Portfolio> test_portfolio() {
  static const auto portfolio =
      std::make_shared<const finance::Portfolio>(finance::Portfolio::synthetic(
          16, {{1.39, "representative"}, {0.8, "stable"}}, 7u));
  return portfolio;
}

struct RequestItem {
  bool is_gamma = true;
  serve::GammaRequest gamma;
  serve::CreditRiskRequest credit;
};

std::vector<RequestItem> mixed_request_set() {
  const float alphas[3] = {0.72f, 1.5f, 4.0f};
  std::vector<RequestItem> items;
  for (std::size_t i = 0; i < 18; ++i) {
    RequestItem item;
    if (i % 6 == 5) {
      item.is_gamma = false;
      item.credit.id = i + 1;
      item.credit.portfolio = test_portfolio();
      item.credit.num_scenarios = 64;
    } else {
      item.gamma.id = i + 1;
      item.gamma.alpha = alphas[i % 3];
      item.gamma.scale = 1.39f;
      item.gamma.count = 257;  // off a block boundary on purpose
    }
    items.push_back(item);
  }
  return items;
}

struct ServedResults {
  std::vector<serve::GammaResult> gamma;        // by set position
  std::vector<serve::CreditRiskResult> credit;  // by set position
};

ServedResults serve_set(serve::SamplingServer& server,
                        const std::vector<RequestItem>& items,
                        const std::vector<std::size_t>& order) {
  std::vector<std::future<serve::GammaResult>> gf(items.size());
  std::vector<std::future<serve::CreditRiskResult>> cf(items.size());
  for (const std::size_t i : order) {
    if (items[i].is_gamma) {
      gf[i] = server.submit(items[i].gamma);
    } else {
      cf[i] = server.submit(items[i].credit);
    }
  }
  ServedResults out;
  out.gamma.resize(items.size());
  out.credit.resize(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].is_gamma) {
      out.gamma[i] = gf[i].get();
    } else {
      out.credit[i] = cf[i].get();
    }
  }
  return out;
}

void expect_identical(const ServedResults& a, const ServedResults& b,
                      const std::vector<RequestItem>& items) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].is_gamma) {
      ASSERT_EQ(a.gamma[i].id, b.gamma[i].id);
      ASSERT_EQ(a.gamma[i].attempts, b.gamma[i].attempts);
      // Bit-identity: the float vectors must match exactly.
      ASSERT_EQ(a.gamma[i].samples, b.gamma[i].samples) << "request " << i;
    } else {
      ASSERT_EQ(a.credit[i].id, b.credit[i].id);
      ASSERT_EQ(a.credit[i].mean, b.credit[i].mean) << "request " << i;
      ASSERT_EQ(a.credit[i].variance, b.credit[i].variance);
      ASSERT_EQ(a.credit[i].var95, b.credit[i].var95);
      ASSERT_EQ(a.credit[i].var999, b.credit[i].var999);
      ASSERT_EQ(a.credit[i].es999, b.credit[i].es999);
    }
  }
}

// ---------------------------------------------------------------------
// Determinism contract
// ---------------------------------------------------------------------

TEST(ServeDeterminism, BitIdenticalAcrossThreadsBatchingAndOrder) {
  ThreadCountGuard guard;
  const auto items = mixed_request_set();
  std::vector<std::size_t> natural(items.size());
  std::iota(natural.begin(), natural.end(), std::size_t{0});
  std::vector<std::size_t> shuffled = natural;
  std::shuffle(shuffled.begin(), shuffled.end(), std::mt19937_64(99));

  serve::ServeConfig cfg;
  cfg.server_seed = 42;
  cfg.queue_capacity = items.size() + 1;

  exec::set_thread_count(1);
  cfg.batching = false;
  ServedResults reference;
  {
    serve::SamplingServer server(cfg);
    reference = serve_set(server, items, natural);
  }

  struct Cell {
    unsigned threads;
    bool batching;
    bool shuffle;
  };
  const unsigned hw = exec::ExecConfig{}.resolved();
  for (const Cell cell : {Cell{4, true, false}, Cell{4, false, true},
                          Cell{hw, true, true}, Cell{1, true, true}}) {
    exec::set_thread_count(cell.threads);
    cfg.batching = cell.batching;
    serve::SamplingServer server(cfg);
    const ServedResults got =
        serve_set(server, items, cell.shuffle ? shuffled : natural);
    expect_identical(reference, got, items);
  }
}

TEST(ServeDeterminism, ResubmittingAnIdReplaysTheExactStream) {
  serve::SamplingServer server;
  serve::GammaRequest req;
  req.id = 12345;
  req.alpha = 0.72f;
  req.count = 100;
  const serve::GammaResult a = server.run(req);
  const serve::GammaResult b = server.run(req);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.attempts, b.attempts);
}

TEST(ServeDeterminism, MatchesOfflineSubstreamComputation) {
  serve::ServeConfig cfg;
  cfg.server_seed = 17;
  serve::SamplingServer server(cfg);

  serve::GammaRequest req;
  req.id = 9;
  req.alpha = 1.5f;
  req.scale = 2.0f;
  req.count = 500;
  const serve::GammaResult served = server.run(req);

  // The same computation with no server: the request's substream from
  // the splitter geometry the server advertises.
  rng::MersenneTwister mt = server.gamma_stream(req.id);
  rng::GammaSampler sampler(rng::GammaConstants::make(req.alpha, req.scale),
                            req.transform);
  std::vector<float> expect(req.count);
  sampler.sample_block(mt, expect.data(), expect.size());
  EXPECT_EQ(served.samples, expect);
  EXPECT_EQ(served.attempts, sampler.attempts());
}

TEST(ServeDeterminism, CounterBasedBitIdenticalAcrossThreadsBatchingAndOrder) {
  // The full determinism matrix again under kCounterBased: the O(1)
  // substream derivation must uphold the exact contract jump-ahead
  // does — thread count, batching, and arrival order move nothing.
  ThreadCountGuard guard;
  const auto items = mixed_request_set();
  std::vector<std::size_t> natural(items.size());
  std::iota(natural.begin(), natural.end(), std::size_t{0});
  std::vector<std::size_t> shuffled = natural;
  std::shuffle(shuffled.begin(), shuffled.end(), std::mt19937_64(99));

  serve::ServeConfig cfg;
  cfg.server_seed = 42;
  cfg.queue_capacity = items.size() + 1;
  cfg.stream_strategy = rng::StreamStrategy::kCounterBased;

  exec::set_thread_count(1);
  cfg.batching = false;
  ServedResults reference;
  {
    serve::SamplingServer server(cfg);
    reference = serve_set(server, items, natural);
  }

  struct Cell {
    unsigned threads;
    bool batching;
    bool shuffle;
  };
  const unsigned hw = exec::ExecConfig{}.resolved();
  for (const Cell cell : {Cell{4, true, false}, Cell{4, false, true},
                          Cell{hw, true, true}, Cell{1, true, true}}) {
    exec::set_thread_count(cell.threads);
    cfg.batching = cell.batching;
    serve::SamplingServer server(cfg);
    const ServedResults got =
        serve_set(server, items, cell.shuffle ? shuffled : natural);
    expect_identical(reference, got, items);
  }
}

TEST(ServeDeterminism, CounterBasedMatchesOfflineSubstreamComputation) {
  serve::ServeConfig cfg;
  cfg.server_seed = 17;
  cfg.stream_strategy = rng::StreamStrategy::kCounterBased;
  serve::SamplingServer server(cfg);

  serve::GammaRequest req;
  req.id = 9;
  req.alpha = 1.5f;
  req.scale = 2.0f;
  req.count = 500;
  const serve::GammaResult served = server.run(req);

  // Offline reproduction without a server: derive the request's Philox
  // stream (a counter write, no master-sequence replay) and rerun.
  rng::Philox px = server.gamma_counter_stream(req.id);
  rng::GammaSampler sampler(rng::GammaConstants::make(req.alpha, req.scale),
                            req.transform);
  std::vector<float> expect(req.count);
  sampler.sample_block(px, expect.data(), expect.size());
  EXPECT_EQ(served.samples, expect);
  EXPECT_EQ(served.attempts, sampler.attempts());
}

TEST(ServeDeterminism, CounterStreamSeekRecomputesAServedSuffix) {
  // The tentpole's serve payoff: because a request's tape is a Philox
  // counter range, any *suffix* of its uniform stream is reachable by
  // seek() without replaying the prefix. Reproduce the served samples'
  // uniform tape from an offset and check it matches the same stream
  // drawn sequentially.
  serve::ServeConfig cfg;
  cfg.stream_strategy = rng::StreamStrategy::kCounterBased;
  serve::SamplingServer server(cfg);

  rng::Philox full = server.gamma_counter_stream(4242);
  std::vector<std::uint32_t> tape(1000);
  full.generate_block(tape.data(), tape.size());

  rng::Philox suffix = server.gamma_counter_stream(4242);
  suffix.skip(900);  // O(1), no matter how far in
  for (std::size_t i = 900; i < 1000; ++i) {
    ASSERT_EQ(suffix.next(), tape[i]) << "position " << i;
  }
}

TEST(ServeDeterminism, CounterBasedStrategyChangesValuesNotContract) {
  // Sanity: the two strategies are different stream families. Same id,
  // same seed, different samples (both valid gammas).
  serve::GammaRequest req;
  req.id = 7;
  req.alpha = 1.5f;
  req.count = 64;

  serve::ServeConfig cfg;
  serve::SamplingServer jump_server(cfg);
  cfg.stream_strategy = rng::StreamStrategy::kCounterBased;
  serve::SamplingServer counter_server(cfg);
  const serve::GammaResult a = jump_server.run(req);
  const serve::GammaResult b = counter_server.run(req);
  EXPECT_NE(a.samples, b.samples);
}

TEST(ServeDeterminism, CounterBasedDistinctIdsGetDisjointSubstreams) {
  serve::ServeConfig cfg;
  cfg.stream_strategy = rng::StreamStrategy::kCounterBased;
  serve::SamplingServer server(cfg);
  rng::Philox a = server.gamma_counter_stream(1);
  rng::Philox b = server.gamma_counter_stream(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= a.next() != b.next();
  EXPECT_TRUE(any_diff);
}

TEST(ServeDeterminism, DistinctIdsGetDisjointSubstreams) {
  serve::SamplingServer server;
  // Adjacent ids start stride·substreams_per_request apart in the
  // master sequence; their first outputs must differ (overlap would
  // replicate them).
  rng::MersenneTwister a = server.gamma_stream(1);
  rng::MersenneTwister b = server.gamma_stream(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= a.next() != b.next();
  EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------------------
// Backpressure and shutdown
// ---------------------------------------------------------------------

TEST(ServeBackpressure, FullQueueRejectsFastWithTypedStatus) {
  serve::ServerMetrics metrics;
  serve::SchedulerConfig cfg;
  cfg.queue_capacity = 3;
  cfg.batching = false;  // the blocker must occupy the scheduler alone
  serve::BatchScheduler scheduler(cfg, &metrics);

  std::promise<void> started;
  std::promise<void> release;
  auto release_future = release.get_future().share();
  std::atomic<int> ran{0};

  serve::Job blocker;
  blocker.kind = serve::RequestKind::kGamma;
  blocker.run = [&, release_future] {
    started.set_value();
    release_future.wait();
    ran.fetch_add(1);
  };
  ASSERT_EQ(scheduler.try_enqueue(std::move(blocker)),
            serve::ServeStatus::kAdmitted);
  started.get_future().wait();  // scheduler is now stuck in the blocker

  // Fill the queue to capacity behind it.
  for (std::size_t i = 0; i < cfg.queue_capacity; ++i) {
    serve::Job job;
    job.run = [&] { ran.fetch_add(1); };
    ASSERT_EQ(scheduler.try_enqueue(std::move(job)),
              serve::ServeStatus::kAdmitted);
  }
  EXPECT_EQ(scheduler.queue_depth(), cfg.queue_capacity);

  // Overload: rejected fast, caller never blocked.
  serve::Job overflow;
  overflow.run = [&] { ran.fetch_add(1); };
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(scheduler.try_enqueue(std::move(overflow)),
            serve::ServeStatus::kQueueFull);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 1.0);

  // Nothing admitted is dropped: release and drain.
  release.set_value();
  scheduler.shutdown();
  EXPECT_EQ(ran.load(), 1 + static_cast<int>(cfg.queue_capacity));
  EXPECT_EQ(metrics.snapshot().admitted,
            1 + static_cast<std::uint64_t>(cfg.queue_capacity));
}

TEST(ServeBackpressure, ShutdownDrainsAdmittedWorkAndRejectsLate) {
  serve::ServeConfig cfg;
  cfg.queue_capacity = 64;
  serve::SamplingServer server(cfg);

  std::vector<std::future<serve::GammaResult>> futures;
  for (std::uint64_t i = 0; i < 16; ++i) {
    serve::GammaRequest req;
    req.id = i + 1;
    req.alpha = 1.0f;
    req.count = 64;
    futures.push_back(server.submit(req));
  }
  server.shutdown();

  // Every admitted future is fulfilled with a real result.
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::GammaResult r = futures[i].get();
    EXPECT_EQ(r.id, i + 1);
    EXPECT_EQ(r.samples.size(), 64u);
  }
  const serve::MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.completed, futures.size());
  EXPECT_EQ(m.failed, 0u);

  // Late submission: typed rejection, no future.
  serve::GammaRequest late;
  late.id = 999;
  late.count = 8;
  std::future<serve::GammaResult> f;
  EXPECT_EQ(server.try_submit(late, &f),
            serve::ServeStatus::kShuttingDown);
  try {
    (void)server.submit(late);
    FAIL() << "submit after shutdown must throw";
  } catch (const serve::RejectedError& e) {
    EXPECT_EQ(e.status(), serve::ServeStatus::kShuttingDown);
  }
  EXPECT_EQ(server.metrics().rejected_shutdown, 2u);
}

TEST(ServeBackpressure, InvalidRequestsRejectWithoutAdmission) {
  serve::SamplingServer server;
  std::future<serve::GammaResult> f;

  serve::GammaRequest zero_count;
  zero_count.id = 1;
  zero_count.count = 0;
  EXPECT_EQ(server.try_submit(zero_count, &f),
            serve::ServeStatus::kInvalidRequest);

  serve::GammaRequest bad_alpha;
  bad_alpha.id = 2;
  bad_alpha.alpha = -1.0f;
  bad_alpha.count = 10;
  EXPECT_EQ(server.try_submit(bad_alpha, &f),
            serve::ServeStatus::kInvalidRequest);

  serve::GammaRequest too_big;
  too_big.id = 3;
  too_big.count = server.config().max_gamma_count + 1;
  EXPECT_EQ(server.try_submit(too_big, &f),
            serve::ServeStatus::kInvalidRequest);

  std::future<serve::CreditRiskResult> cf;
  serve::CreditRiskRequest no_portfolio;
  no_portfolio.id = 4;
  no_portfolio.num_scenarios = 100;
  EXPECT_EQ(server.try_submit(no_portfolio, &cf),
            serve::ServeStatus::kInvalidRequest);

  serve::CreditRiskRequest one_scenario;
  one_scenario.id = 5;
  one_scenario.portfolio = test_portfolio();
  one_scenario.num_scenarios = 1;
  EXPECT_EQ(server.try_submit(one_scenario, &cf),
            serve::ServeStatus::kInvalidRequest);

  try {
    (void)server.submit(zero_count);
    FAIL() << "invalid request must throw";
  } catch (const serve::RejectedError& e) {
    EXPECT_EQ(e.status(), serve::ServeStatus::kInvalidRequest);
  }

  const serve::MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.admitted, 0u);
  EXPECT_EQ(m.rejected_invalid, 6u);
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(ServeMetrics, NearestRankPercentiles) {
  std::vector<double> xs(100);
  std::iota(xs.begin(), xs.end(), 1.0);  // 1..100
  std::shuffle(xs.begin(), xs.end(), std::mt19937_64(3));
  const serve::LatencySummary s = serve::summarize_latencies(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(s.max_seconds, 100.0);
  EXPECT_DOUBLE_EQ(s.mean_seconds, 50.5);
  EXPECT_DOUBLE_EQ(s.p50_seconds, 50.0);
  EXPECT_DOUBLE_EQ(s.p95_seconds, 95.0);
  EXPECT_DOUBLE_EQ(s.p99_seconds, 99.0);

  const serve::LatencySummary empty = serve::summarize_latencies({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p99_seconds, 0.0);

  const serve::LatencySummary one = serve::summarize_latencies({2.5});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.p50_seconds, 2.5);
  EXPECT_DOUBLE_EQ(one.p99_seconds, 2.5);
}

TEST(ServeMetrics, CountersTrackTheRequestLifecycle) {
  serve::ServeConfig cfg;
  cfg.max_batch = 4;
  serve::SamplingServer server(cfg);
  for (std::uint64_t i = 0; i < 10; ++i) {
    serve::GammaRequest req;
    req.id = i + 1;
    req.count = 32;
    (void)server.run(req);
  }
  const serve::MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.submitted, 10u);
  EXPECT_EQ(m.admitted, 10u);
  EXPECT_EQ(m.completed, 10u);
  EXPECT_EQ(m.failed, 0u);
  EXPECT_GE(m.batches, 1u);
  EXPECT_LE(m.max_batch_occupancy, cfg.max_batch);
  EXPECT_EQ(m.latency.count, 10u);
  EXPECT_GE(m.latency.p99_seconds, m.latency.p50_seconds);
}

// ---------------------------------------------------------------------
// Ring buffers under serve workload shapes
// ---------------------------------------------------------------------

/// Job-shaped payload: a closure plus shared ownership, like the
/// scheduler's admission entries.
struct FakeJob {
  std::shared_ptr<int> payload;
  std::function<void()> run;
};

TEST(ServeRingBuffer, FullQueueRejectionAndRecovery) {
  RingBuffer<FakeJob> q(2);
  EXPECT_TRUE(q.try_push(FakeJob{std::make_shared<int>(1), [] {}}));
  EXPECT_TRUE(q.try_push(FakeJob{std::make_shared<int>(2), [] {}}));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.try_push(FakeJob{std::make_shared<int>(3), [] {}}));
  EXPECT_EQ(*q.pop().payload, 1);  // FIFO preserved across rejection
  EXPECT_TRUE(q.try_push(FakeJob{std::make_shared<int>(4), [] {}}));
  EXPECT_EQ(*q.pop().payload, 2);
  EXPECT_EQ(*q.pop().payload, 4);
  EXPECT_TRUE(q.empty());
}

TEST(ServeRingBuffer, WraparoundAtCapacityBoundary) {
  // Admission-queue shape: repeated partial fill/drain marching the
  // head and tail across the capacity boundary many times.
  RingBuffer<FakeJob> q(3);
  int next = 0, expect = 0;
  for (int round = 0; round < 100; ++round) {
    while (!q.full()) {
      q.push(FakeJob{std::make_shared<int>(next++), [] {}});
    }
    const std::size_t drain = 1 + static_cast<std::size_t>(round % 3);
    for (std::size_t d = 0; d < drain && !q.empty(); ++d) {
      ASSERT_EQ(*q.pop().payload, expect++);
    }
  }
  while (!q.empty()) ASSERT_EQ(*q.pop().payload, expect++);
  EXPECT_EQ(next, expect);
}

TEST(ServeRingBuffer, DestructionReleasesEnqueuedItems) {
  std::weak_ptr<int> leaked_a, leaked_b;
  {
    RingBuffer<FakeJob> q(4);
    auto a = std::make_shared<int>(1);
    auto b = std::make_shared<int>(2);
    leaked_a = a;
    leaked_b = b;
    q.push(FakeJob{std::move(a), [] {}});
    q.push(FakeJob{std::move(b), [] {}});
    (void)q.pop();  // one consumed, one still enqueued at destruction
  }
  EXPECT_TRUE(leaked_a.expired());
  EXPECT_TRUE(leaked_b.expired());
}

TEST(ServeSpscRingBuffer, FullQueueRejectionSingleThread) {
  SpscRingBuffer<FakeJob> q(2);
  EXPECT_TRUE(q.try_push(FakeJob{std::make_shared<int>(1), [] {}}));
  EXPECT_TRUE(q.try_push(FakeJob{std::make_shared<int>(2), [] {}}));
  EXPECT_FALSE(q.try_push(FakeJob{std::make_shared<int>(3), [] {}}));
  FakeJob out;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(*out.payload, 1);
  EXPECT_TRUE(q.try_push(FakeJob{std::make_shared<int>(4), [] {}}));
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(*out.payload, 2);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(*out.payload, 4);
  EXPECT_FALSE(q.try_pop(out));
}

TEST(ServeSpscRingBuffer, WraparoundUnderProducerConsumerThreads) {
  // Serve bridge shape: a submitting thread feeds a tiny queue, a
  // draining thread consumes; rejections retry. Order and completeness
  // must survive thousands of boundary crossings.
  SpscRingBuffer<FakeJob> q(3);
  constexpr int kItems = 20000;
  std::atomic<std::uint64_t> rejections{0};

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      FakeJob job{std::make_shared<int>(i), [] {}};
      // push a copy: try_push takes its argument by value, so a failed
      // move would leave `job` empty for the retry
      while (!q.try_push(job)) {
        rejections.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    }
  });
  int expect = 0;
  FakeJob out;
  while (expect < kItems) {
    if (q.try_pop(out)) {
      ASSERT_EQ(*out.payload, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_FALSE(q.try_pop(out));  // drained
  // The tiny capacity must actually have exercised the full path.
  EXPECT_GT(rejections.load(), 0u);
}

TEST(ServeSpscRingBuffer, DestructionReleasesEnqueuedItems) {
  std::weak_ptr<int> leaked;
  {
    SpscRingBuffer<FakeJob> q(4);
    auto p = std::make_shared<int>(42);
    leaked = p;
    ASSERT_TRUE(q.try_push(FakeJob{std::move(p), [] {}}));
  }
  EXPECT_TRUE(leaked.expired());
}

// ---------------------------------------------------------------------
// Resident CreditRisk+ pipeline (serve/resident_pipeline.h)
// ---------------------------------------------------------------------

std::vector<serve::CreditRiskResult> serve_credit_batch(
    const serve::ServeConfig& cfg, std::size_t n,
    std::uint64_t num_scenarios) {
  serve::SamplingServer server(cfg);
  std::vector<std::future<serve::CreditRiskResult>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    serve::CreditRiskRequest req;
    req.id = 100 + i;
    req.portfolio = test_portfolio();
    req.num_scenarios = num_scenarios;
    futures.push_back(server.submit(req));
  }
  std::vector<serve::CreditRiskResult> out;
  out.reserve(n);
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

void expect_credit_identical(const std::vector<serve::CreditRiskResult>& a,
                             const std::vector<serve::CreditRiskResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].id, b[i].id);
    ASSERT_EQ(a[i].scenarios, b[i].scenarios);
    // Bit-identity: exact double comparison on purpose.
    ASSERT_EQ(a[i].mean, b[i].mean) << "request " << i;
    ASSERT_EQ(a[i].variance, b[i].variance);
    ASSERT_EQ(a[i].var95, b[i].var95);
    ASSERT_EQ(a[i].var999, b[i].var999);
    ASSERT_EQ(a[i].es999, b[i].es999);
  }
}

TEST(ServeResident, ByteIdenticalToClassicAcrossStrategies) {
  for (const auto strategy : {rng::StreamStrategy::kJumpAhead,
                              rng::StreamStrategy::kCounterBased}) {
    serve::ServeConfig cfg;
    cfg.server_seed = 23;
    cfg.stream_strategy = strategy;
    const auto classic = serve_credit_batch(cfg, 6, 128);
    cfg.resident = true;
    const auto resident = serve_credit_batch(cfg, 6, 128);
    expect_credit_identical(classic, resident);
  }
}

TEST(ServeResident, RowBlockAndPipeDepthCannotMoveBits) {
  serve::ServeConfig cfg;
  cfg.server_seed = 31;
  cfg.resident = true;
  cfg.resident_row_block = 64;
  cfg.resident_pipe_depth = 8;
  const auto base = serve_credit_batch(cfg, 4, 150);
  for (const std::size_t row_block : {std::size_t{1}, std::size_t{7}}) {
    for (const std::size_t depth : {std::size_t{1}, std::size_t{16}}) {
      cfg.resident_row_block = row_block;
      cfg.resident_pipe_depth = depth;
      expect_credit_identical(base, serve_credit_batch(cfg, 4, 150));
    }
  }
}

TEST(ServeResident, GammaRequestsStillUseTheClassicScheduler) {
  // The resident chain serves CreditRisk+ only; gamma batches keep
  // their scheduler path and their results.
  serve::GammaRequest req;
  req.id = 9;
  req.alpha = 0.72f;
  req.scale = 1.39f;
  req.count = 200;
  serve::ServeConfig cfg;
  serve::SamplingServer classic(cfg);
  const serve::GammaResult a = classic.run(req);
  cfg.resident = true;
  serve::SamplingServer resident(cfg);
  const serve::GammaResult b = resident.run(req);
  ASSERT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.attempts, b.attempts);
}

TEST(ServeResident, ShutdownDrainsAdmittedWorkAndRejectsLate) {
  serve::ServeConfig cfg;
  cfg.resident = true;
  serve::SamplingServer server(cfg);
  serve::CreditRiskRequest req;
  req.id = 1;
  req.portfolio = test_portfolio();
  req.num_scenarios = 400;
  std::future<serve::CreditRiskResult> f;
  ASSERT_EQ(server.try_submit(req, &f), serve::ServeStatus::kAdmitted);
  server.shutdown();
  // Admitted before shutdown → fulfilled.
  EXPECT_EQ(f.get().scenarios, 400u);
  // Late submission → typed rejection, no future.
  std::future<serve::CreditRiskResult> late;
  EXPECT_EQ(server.try_submit(req, &late),
            serve::ServeStatus::kShuttingDown);
  const serve::MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.rejected_shutdown, 1u);
}

TEST(ServeResident, InvalidRequestsRejectWithoutAdmission) {
  serve::ServeConfig cfg;
  cfg.resident = true;
  serve::SamplingServer server(cfg);
  serve::CreditRiskRequest req;
  req.id = 1;
  req.portfolio = test_portfolio();
  req.num_scenarios = 1;  // below the minimum
  std::future<serve::CreditRiskResult> f;
  EXPECT_EQ(server.try_submit(req, &f),
            serve::ServeStatus::kInvalidRequest);
  const serve::MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.admitted, 0u);
  EXPECT_EQ(m.rejected_invalid, 1u);
}

// ---------------------------------------------------------------------
// Latency reservoir (bounded-memory metrics)
// ---------------------------------------------------------------------

TEST(ServeMetrics, ReservoirIsExactBelowCapacity) {
  serve::LatencyReservoir r(128);
  for (int i = 1; i <= 100; ++i) r.record(static_cast<double>(i));
  EXPECT_EQ(r.count(), 100u);
  EXPECT_EQ(r.stored(), 100u);
  const serve::LatencySummary s = r.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(s.max_seconds, 100.0);
  EXPECT_DOUBLE_EQ(s.mean_seconds, 50.5);
  EXPECT_DOUBLE_EQ(s.p50_seconds, 50.0);  // matches the exact recorder
}

TEST(ServeMetrics, ReservoirBoundsStorageAndKeepsExactAggregates) {
  constexpr std::size_t kCap = 64;
  serve::LatencyReservoir r(kCap);
  constexpr int kN = 10'000;
  for (int i = 1; i <= kN; ++i) r.record(static_cast<double>(i));
  EXPECT_EQ(r.count(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(r.stored(), kCap);  // the regression: storage stays bounded
  const serve::LatencySummary s = r.summarize();
  EXPECT_EQ(s.count, static_cast<std::size_t>(kN));
  EXPECT_DOUBLE_EQ(s.min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(s.max_seconds, static_cast<double>(kN));
  EXPECT_DOUBLE_EQ(s.mean_seconds, (1.0 + kN) / 2.0);
  // Percentile estimates from a uniform 1..N stream land near their
  // exact ranks (loose band: 64 samples).
  EXPECT_NEAR(s.p50_seconds / (0.50 * kN), 1.0, 0.35);
  EXPECT_GE(s.p99_seconds, s.p50_seconds);
}

TEST(ServeMetrics, ReservoirIsDeterministic) {
  serve::LatencyReservoir a(32), b(32);
  for (int i = 0; i < 5'000; ++i) {
    const double v = static_cast<double>((i * 2654435761u) % 1000);
    a.record(v);
    b.record(v);
  }
  const serve::LatencySummary sa = a.summarize();
  const serve::LatencySummary sb = b.summarize();
  EXPECT_DOUBLE_EQ(sa.p50_seconds, sb.p50_seconds);
  EXPECT_DOUBLE_EQ(sa.p95_seconds, sb.p95_seconds);
  EXPECT_DOUBLE_EQ(sa.p99_seconds, sb.p99_seconds);
}

TEST(ServeMetrics, RecorderStorageStaysBoundedUnderLoad) {
  // Regression for the unbounded-latency-vector bug: the recorder's
  // stored sample count can never exceed the reservoir capacity while
  // the completion count keeps growing, and snapshot() keeps working.
  serve::ServerMetrics metrics;
  const std::size_t n = serve::LatencyReservoir::kDefaultCapacity + 5'000;
  for (std::size_t i = 0; i < n; ++i) {
    metrics.record_completed(1e-6 * static_cast<double>(i + 1),
                             serve::RequestKind::kGamma);
  }
  EXPECT_EQ(metrics.latency_samples_stored(),
            serve::LatencyReservoir::kDefaultCapacity);
  const serve::MetricsSnapshot m = metrics.snapshot();
  EXPECT_EQ(m.completed, n);
  EXPECT_EQ(m.latency.count, n);  // exact even though storage is bounded
  EXPECT_DOUBLE_EQ(m.latency.min_seconds, 1e-6);
  EXPECT_DOUBLE_EQ(m.latency.max_seconds, 1e-6 * static_cast<double>(n));
  EXPECT_GT(m.latency.p99_seconds, 0.0);
}

// ---------------------------------------------------------------------
// Modeled-capacity admission (serve/capacity.h wiring)
// ---------------------------------------------------------------------

TEST(ServeCapacity, EnabledPlanReplacesQueueAndBatchConstants) {
  serve::ServeConfig cfg;
  cfg.queue_capacity = 256;
  cfg.max_batch = 16;
  cfg.capacity.modeled_rps = 100.0;  // 0.05 s queue -> 5, 2 ms batch -> 1
  serve::SamplingServer server(cfg);
  EXPECT_EQ(server.config().queue_capacity, 5u);
  EXPECT_EQ(server.config().max_batch, 1u);
}

TEST(ServeCapacity, BoundsTrackTheModeledDeviceSpeed) {
  // Same workload mix, two modeled devices: the faster device derives
  // the wider admission bounds — the whole point of capacity-aware
  // admission on a heterogeneous cluster.
  serve::ServeConfig fast_cfg, slow_cfg;
  fast_cfg.capacity.modeled_rps = 20000.0;
  slow_cfg.capacity.modeled_rps = 30.0;
  serve::SamplingServer fast_server(fast_cfg);
  serve::SamplingServer slow_server(slow_cfg);
  EXPECT_GT(fast_server.config().queue_capacity,
            slow_server.config().queue_capacity);
  EXPECT_GE(fast_server.config().max_batch,
            slow_server.config().max_batch);
  // Floors: even a glacial modeled device must admit and dispatch.
  serve::ServeConfig glacial_cfg;
  glacial_cfg.capacity.modeled_rps = 1e-6;
  serve::SamplingServer glacial(glacial_cfg);
  EXPECT_GE(glacial.config().queue_capacity, 1u);
  EXPECT_GE(glacial.config().max_batch, 1u);
}

TEST(ServeCapacity, DisabledPlanKeepsTheExplicitConstants) {
  serve::ServeConfig cfg;
  cfg.queue_capacity = 77;
  cfg.max_batch = 9;
  // cfg.capacity left at its default: modeled_rps == 0, plan off.
  serve::SamplingServer server(cfg);
  EXPECT_EQ(server.config().queue_capacity, 77u);
  EXPECT_EQ(server.config().max_batch, 9u);
}

TEST(ServeCapacity, DerivedBoundsDoNotMoveResponseBits) {
  const auto items = mixed_request_set();
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  serve::ServeConfig plain;
  serve::ServeConfig planned;
  planned.capacity.modeled_rps = 4000.0;  // queue 200, batch 8
  serve::SamplingServer a(plain), b(planned);
  expect_identical(serve_set(a, items, order), serve_set(b, items, order),
                   items);
}

// ---------------------------------------------------------------------
// Bounded deterministic response cache
// ---------------------------------------------------------------------

TEST(ServeCache, RepeatRequestHitsAndServesIdenticalBytes) {
  serve::ServeConfig cached_cfg;
  cached_cfg.response_cache_entries = 32;
  serve::SamplingServer cached(cached_cfg);
  serve::SamplingServer plain{serve::ServeConfig{}};

  serve::GammaRequest req;
  req.id = 42;
  req.alpha = 1.39f;
  req.scale = 1.0f;
  req.count = 257;

  const serve::GammaResult first = cached.run(req);
  const serve::GammaResult again = cached.run(req);
  const serve::GammaResult uncached = plain.run(req);
  // A hit replays the stored bytes; caching can never move a bit
  // relative to an uncached server with the same seed.
  ASSERT_EQ(first.samples, again.samples);
  ASSERT_EQ(first.samples, uncached.samples);
  EXPECT_EQ(first.attempts, again.attempts);

  const serve::MetricsSnapshot m = cached.metrics();
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.cache_misses, 1u);
  EXPECT_EQ(m.submitted, 2u);
  EXPECT_EQ(m.completed, 2u);
  EXPECT_EQ(m.admitted, 1u);  // the hit never entered the queue
  // The cache-off server records no cache traffic at all.
  EXPECT_EQ(plain.metrics().cache_hits, 0u);
  EXPECT_EQ(plain.metrics().cache_misses, 0u);
}

TEST(ServeCache, TrySubmitReportsTheHit) {
  serve::ServeConfig cfg;
  cfg.response_cache_entries = 8;
  serve::SamplingServer server(cfg);
  serve::GammaRequest req;
  req.id = 7;
  req.alpha = 2.0f;
  req.scale = 1.0f;
  req.count = 64;
  std::future<serve::GammaResult> f1, f2;
  bool hit1 = true, hit2 = false;
  ASSERT_EQ(server.try_submit(req, &f1, &hit1),
            serve::ServeStatus::kAdmitted);
  EXPECT_FALSE(hit1);
  (void)f1.get();
  ASSERT_EQ(server.try_submit(req, &f2, &hit2),
            serve::ServeStatus::kAdmitted);
  EXPECT_TRUE(hit2);
  (void)f2.get();
}

TEST(ServeCache, SameIdDifferentParametersIsNotAHit) {
  serve::ServeConfig cfg;
  cfg.response_cache_entries = 8;
  serve::SamplingServer server(cfg);
  serve::GammaRequest req;
  req.id = 11;
  req.alpha = 1.5f;
  req.scale = 1.0f;
  req.count = 64;
  (void)server.run(req);
  req.alpha = 4.0f;  // same id, different request content
  (void)server.run(req);
  const serve::MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.cache_hits, 0u);
  EXPECT_EQ(m.cache_misses, 2u);
}

TEST(ServeCache, FifoEvictionKeepsTheCacheBounded) {
  serve::ServeConfig cfg;
  cfg.response_cache_entries = 2;
  serve::SamplingServer server(cfg);
  serve::GammaRequest req;
  req.alpha = 1.5f;
  req.scale = 1.0f;
  req.count = 64;
  for (serve::RequestId id = 1; id <= 3; ++id) {
    req.id = id;
    (void)server.run(req);  // id 1 is evicted when id 3 lands
  }
  req.id = 1;
  (void)server.run(req);  // miss: evicted
  req.id = 3;
  (void)server.run(req);  // hit: still resident
  const serve::MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.cache_misses, 4u);
}

// ---------------------------------------------------------------------
// Divergent-kernel zoo request kinds (src/workloads via serve)
// ---------------------------------------------------------------------

TEST(ServeKinds, RequestKindNamesRoundTrip) {
  for (std::size_t i = 0; i < serve::kNumRequestKinds; ++i) {
    const auto kind = static_cast<serve::RequestKind>(i);
    const auto parsed = serve::parse_request_kind(serve::to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << serve::to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(serve::parse_request_kind("poisson").has_value());
  EXPECT_FALSE(serve::parse_request_kind("").has_value());
  EXPECT_FALSE(serve::parse_request_kind("unknown").has_value());
}

TEST(ServeZoo, HistogramResponseIsReproducibleOffline) {
  serve::ServeConfig cfg;
  cfg.server_seed = 2024;
  serve::SamplingServer server(cfg);

  serve::HistogramRequest req;
  req.id = 9;
  req.num_updates = 3000;
  req.num_bins = 128;
  req.hot_fraction = 0.4f;
  const serve::HistogramResult res = server.run(req);

  // Offline: replay the request's slot-0 substream through the same
  // trace generator and kernel — no server required.
  rng::MersenneTwister mt = server.gamma_stream(req.id);
  const workloads::HistogramTrace trace = workloads::make_histogram_trace(
      req.num_updates, req.num_bins, req.hot_fraction,
      [&mt] { return mt.next(); });
  workloads::HistogramConfig kcfg;
  kcfg.num_bins = req.num_bins;
  kcfg.mode = req.mode;
  const workloads::HistogramOutput offline =
      workloads::run_histogram(kcfg, trace.addrs, trace.weights);

  ASSERT_EQ(res.bins, offline.bins);
  EXPECT_EQ(res.stats.cycles, offline.stats.cycles);
  EXPECT_EQ(res.stats.forwarded, offline.stats.forwarded);
}

TEST(ServeZoo, ResponsesAreIdenticalAcrossServersAndBatching) {
  serve::ServeConfig base;
  base.server_seed = 404;
  serve::ServeConfig unbatched = base;
  unbatched.batching = false;
  serve::SamplingServer a(base), b(unbatched);

  serve::HistogramRequest hreq;
  hreq.id = 1;
  hreq.num_updates = 1000;
  hreq.hot_fraction = 0.25f;
  serve::SpmvRequest sreq;
  sreq.id = 2;
  sreq.rows = 200;
  sreq.nnz_per_row_max = 6;
  serve::MatchingRequest mreq;
  mreq.id = 3;
  mreq.num_vertices = 300;
  mreq.num_edges = 900;
  mreq.target_pairs = 40;

  EXPECT_EQ(a.run(hreq).bins, b.run(hreq).bins);
  EXPECT_EQ(a.run(sreq).y, b.run(sreq).y);
  const serve::MatchingResult ma = a.run(mreq), mb = b.run(mreq);
  EXPECT_EQ(ma.match, mb.match);
  EXPECT_EQ(ma.pairs, mb.pairs);
  EXPECT_EQ(ma.stats.cycles, mb.stats.cycles);
}

TEST(ServeZoo, SchedulingModeMovesCyclesNeverPayloadBytes) {
  serve::SamplingServer server{serve::ServeConfig{}};
  serve::HistogramRequest req;
  req.id = 5;
  req.num_updates = 2000;
  req.hot_fraction = 0.8f;  // heavy collisions
  req.mode = workloads::SchedulingMode::kStatic;
  const serve::HistogramResult st = server.run(req);
  req.mode = workloads::SchedulingMode::kDynamic;
  const serve::HistogramResult dyn = server.run(req);
  EXPECT_EQ(st.bins, dyn.bins);  // same payload bytes
  EXPECT_LT(dyn.stats.cycles, st.stats.cycles);  // different schedule
  EXPECT_GT(dyn.stats.forwarded, 0u);
}

TEST(ServeZoo, CounterBasedStrategyIsInternallyDeterministic) {
  serve::ServeConfig cfg;
  cfg.stream_strategy = rng::StreamStrategy::kCounterBased;
  serve::SamplingServer a(cfg), b(cfg);
  serve::SpmvRequest req;
  req.id = 12;
  req.rows = 128;
  req.nnz_per_row_max = 10;
  const serve::SpmvResult ra = a.run(req), rb = b.run(req);
  EXPECT_EQ(ra.y, rb.y);
  EXPECT_EQ(ra.nnz, rb.nnz);

  // Offline reproduction over the Philox slot.
  rng::Philox px = a.gamma_counter_stream(req.id);
  const auto next = [&px] { return px.next(); };
  const workloads::CsrMatrix m = workloads::make_spmv_matrix(
      req.rows, req.rows, req.nnz_per_row_min, req.nnz_per_row_max, next);
  const std::vector<float> x = workloads::make_dense_vector(req.rows, next);
  workloads::SpmvConfig kcfg;
  kcfg.mode = req.mode;
  EXPECT_EQ(ra.y, workloads::run_spmv(kcfg, m, x).y);
}

TEST(ServeZoo, ValidationRejectsOutOfRangeRequests) {
  serve::SamplingServer server{serve::ServeConfig{}};
  {
    serve::HistogramRequest req;  // num_updates == 0
    std::future<serve::HistogramResult> f;
    EXPECT_EQ(server.try_submit(req, &f),
              serve::ServeStatus::kInvalidRequest);
    req.num_updates = 100;
    req.hot_fraction = 1.5f;  // out of [0, 1]
    EXPECT_EQ(server.try_submit(req, &f),
              serve::ServeStatus::kInvalidRequest);
  }
  {
    serve::SpmvRequest req;
    req.rows = 100;
    req.nnz_per_row_min = 9;
    req.nnz_per_row_max = 3;  // min > max
    std::future<serve::SpmvResult> f;
    EXPECT_EQ(server.try_submit(req, &f),
              serve::ServeStatus::kInvalidRequest);
    req.nnz_per_row_min = 0;
    req.nnz_per_row_max = server.config().max_spmv_nnz_per_row + 1;
    EXPECT_EQ(server.try_submit(req, &f),
              serve::ServeStatus::kInvalidRequest);
  }
  {
    serve::MatchingRequest req;
    req.num_vertices = 1;  // below the 2-vertex minimum
    req.num_edges = 4;
    std::future<serve::MatchingResult> f;
    EXPECT_EQ(server.try_submit(req, &f),
              serve::ServeStatus::kInvalidRequest);
  }
  const serve::MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.rejected_invalid, 5u);
  EXPECT_EQ(m.completed, 0u);
}

TEST(ServeZoo, PerKindCountersTrackSubmissionsAndCompletions) {
  serve::SamplingServer server{serve::ServeConfig{}};
  serve::GammaRequest g;
  g.id = 1;
  g.count = 32;
  serve::HistogramRequest h;
  h.id = 2;
  h.num_updates = 64;
  serve::MatchingRequest match;
  match.id = 3;
  match.num_vertices = 16;
  match.num_edges = 20;
  (void)server.run(g);
  (void)server.run(h);
  (void)server.run(h);
  (void)server.run(match);
  const serve::MetricsSnapshot m = server.metrics();
  const auto at = [&](serve::RequestKind k) {
    return static_cast<std::size_t>(k);
  };
  EXPECT_EQ(m.submitted_by_kind[at(serve::RequestKind::kGamma)], 1u);
  EXPECT_EQ(m.submitted_by_kind[at(serve::RequestKind::kHistogram)], 2u);
  EXPECT_EQ(m.submitted_by_kind[at(serve::RequestKind::kSpmv)], 0u);
  EXPECT_EQ(m.submitted_by_kind[at(serve::RequestKind::kMatching)], 1u);
  EXPECT_EQ(m.completed_by_kind[at(serve::RequestKind::kGamma)], 1u);
  EXPECT_EQ(m.completed_by_kind[at(serve::RequestKind::kHistogram)], 2u);
  EXPECT_EQ(m.completed_by_kind[at(serve::RequestKind::kMatching)], 1u);
  EXPECT_EQ(m.completed, 4u);
}

TEST(ServeCache, InterleavedKindsEvictIndependentlyAtCapacity) {
  // Satellite check: the FIFO bound is PER KIND — a burst of one kind
  // at capacity cannot evict another kind's entries, and hit/miss
  // accounting stays exact under interleaving.
  serve::ServeConfig cfg;
  cfg.response_cache_entries = 2;
  serve::SamplingServer server(cfg);

  serve::GammaRequest g;
  g.alpha = 1.5f;
  g.scale = 1.0f;
  g.count = 32;
  serve::HistogramRequest h;
  h.num_updates = 64;

  // Interleave: gamma ids 1..3 and histogram ids 1..3 at capacity 2.
  for (serve::RequestId id = 1; id <= 3; ++id) {
    g.id = id;
    h.id = id;
    (void)server.run(g);
    (void)server.run(h);
  }
  // 6 misses so far; each kind holds {2, 3} having FIFO-evicted id 1.
  g.id = 1;
  (void)server.run(g);  // miss; re-inserting 1 FIFO-evicts gamma id 2
  h.id = 3;
  (void)server.run(h);  // hit (histogram store was not disturbed)
  g.id = 2;
  (void)server.run(g);  // miss: evicted by the re-insert above
  h.id = 2;
  (void)server.run(h);  // hit: the histogram store saw no new inserts

  const serve::MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.cache_hits, 2u);
  EXPECT_EQ(m.cache_misses, 8u);
  EXPECT_EQ(m.completed_by_kind[static_cast<std::size_t>(
                serve::RequestKind::kGamma)],
            5u);
  EXPECT_EQ(m.completed_by_kind[static_cast<std::size_t>(
                serve::RequestKind::kHistogram)],
            5u);
}

TEST(ServeCache, ZooHitReplaysBitsAndSkipsTheQueue) {
  serve::ServeConfig cfg;
  cfg.response_cache_entries = 8;
  serve::SamplingServer server(cfg);
  serve::MatchingRequest req;
  req.id = 21;
  req.num_vertices = 100;
  req.num_edges = 250;
  const serve::MatchingResult first = server.run(req);
  std::future<serve::MatchingResult> f;
  bool hit = false;
  ASSERT_EQ(server.try_submit(req, &f, &hit), serve::ServeStatus::kAdmitted);
  EXPECT_TRUE(hit);
  const serve::MatchingResult again = f.get();
  EXPECT_EQ(first.match, again.match);
  EXPECT_EQ(first.stats.cycles, again.stats.cycles);
  // Same id, different mode is a DIFFERENT key (stats differ).
  req.mode = workloads::SchedulingMode::kStatic;
  bool hit2 = true;
  std::future<serve::MatchingResult> f2;
  ASSERT_EQ(server.try_submit(req, &f2, &hit2),
            serve::ServeStatus::kAdmitted);
  EXPECT_FALSE(hit2);
  EXPECT_EQ(f2.get().match, first.match);  // payload still identical
}

TEST(ServeCache, ResidentCreditPathServesFromCache) {
  serve::ServeConfig cfg;
  cfg.resident = true;
  cfg.response_cache_entries = 8;
  serve::SamplingServer server(cfg);
  serve::CreditRiskRequest req;
  req.id = 77;
  req.portfolio = test_portfolio();
  req.num_scenarios = 64;
  const serve::CreditRiskResult first = server.run(req);
  const serve::CreditRiskResult again = server.run(req);
  ASSERT_EQ(first.mean, again.mean);
  ASSERT_EQ(first.var999, again.var999);
  const serve::MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.cache_misses, 1u);
}

}  // namespace
}  // namespace dwi
