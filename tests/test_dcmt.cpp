// Tests for the dynamic-creation machinery (rng/dcmt): GF(2) matrix
// algebra, the MT transition-matrix construction, and the full-period
// proof — including re-verifying the shipped MT(521) parameter set.
#include <gtest/gtest.h>

#include <random>

#include "rng/dcmt.h"
#include "rng/mersenne_twister.h"

namespace dwi::rng {
namespace {

TEST(Gf2Matrix, IdentityBasics) {
  auto id = Gf2Matrix::identity(100);
  EXPECT_TRUE(id.get(0, 0));
  EXPECT_TRUE(id.get(99, 99));
  EXPECT_FALSE(id.get(0, 1));
  EXPECT_EQ(id.rank(), 100u);
  EXPECT_TRUE(id.invertible());
  EXPECT_TRUE(id * id == id);
}

TEST(Gf2Matrix, MultiplicationSmallKnown) {
  // [[1,1],[0,1]]^2 = [[1,0],[0,1]] over GF(2).
  Gf2Matrix a(2);
  a.set(0, 0, true);
  a.set(0, 1, true);
  a.set(1, 1, true);
  EXPECT_TRUE(a.square() == Gf2Matrix::identity(2));
}

TEST(Gf2Matrix, MultiplicationAssociative) {
  std::mt19937 eng(5);
  auto random_matrix = [&](unsigned dim) {
    Gf2Matrix m(dim);
    for (unsigned i = 0; i < dim; ++i) {
      for (unsigned j = 0; j < dim; ++j) m.set(i, j, (eng() & 1) != 0);
    }
    return m;
  };
  const auto a = random_matrix(70);
  const auto b = random_matrix(70);
  const auto c = random_matrix(70);
  EXPECT_TRUE((a * b) * c == a * (b * c));
}

TEST(Gf2Matrix, RankDetectsSingular) {
  Gf2Matrix m(3);
  m.set(0, 0, true);
  m.set(1, 1, true);
  m.set(2, 0, true);  // row 2 == row 0 pattern? no: only col 0
  m.set(2, 1, true);  // row2 = row0 + row1 → singular
  EXPECT_EQ(m.rank(), 2u);
  EXPECT_FALSE(m.invertible());
}

TEST(Gf2Matrix, ApplyMatchesColumnSelection) {
  // T·e_j must equal column j of T.
  std::mt19937 eng(9);
  Gf2Matrix m(80);
  for (unsigned i = 0; i < 80; ++i) {
    for (unsigned j = 0; j < 80; ++j) m.set(i, j, (eng() & 1) != 0);
  }
  for (unsigned j : {0u, 13u, 63u, 64u, 79u}) {
    std::vector<std::uint64_t> e(2, 0);
    e[j / 64] = std::uint64_t{1} << (j % 64);
    const auto y = m.apply(e);
    for (unsigned i = 0; i < 80; ++i) {
      EXPECT_EQ(((y[i / 64] >> (i % 64)) & 1u) != 0, m.get(i, j));
    }
  }
}

TEST(Dcmt, TransitionMatrixMatchesGenerator) {
  // Pushing a random state through the matrix must equal running the
  // word-level recurrence — checked indirectly: T is invertible and
  // has the right dimension for the MT(521) geometry.
  const auto t = mt_transition_matrix(mt521_params());
  EXPECT_EQ(t.dim(), 521u);
  EXPECT_TRUE(t.invertible());
}

TEST(Dcmt, KnownMersenneExponents) {
  EXPECT_TRUE(is_known_mersenne_prime_exponent(521));
  EXPECT_TRUE(is_known_mersenne_prime_exponent(19937));
  EXPECT_TRUE(is_known_mersenne_prime_exponent(607));
  EXPECT_FALSE(is_known_mersenne_prime_exponent(520));
  EXPECT_FALSE(is_known_mersenne_prime_exponent(1000));
}

TEST(Dcmt, ShippedMt521HasFullPeriod) {
  // The library's MT(521) constant was produced by
  // find_full_period_twist; re-run the proof.
  EXPECT_TRUE(verify_full_period(mt521_params()));
}

TEST(Dcmt, CorruptedTwistFailsProof) {
  MtParams bad = mt521_params();
  bad.a ^= 0x00000102u;  // arbitrary perturbation (kept odd)
  EXPECT_FALSE(verify_full_period(bad));
}

TEST(Dcmt, RejectsNonMersenneGeometry) {
  MtParams p = mt521_params();
  p.r = 22;  // exponent 522 = 2·261, not prime
  EXPECT_THROW(verify_full_period(p), dwi::Error);
}

TEST(Dcmt, SearchFindsTheShippedCoefficient) {
  // Starting two odd steps below the shipped value, the search must
  // land exactly on it (nothing in between passes).
  MtParams p = mt521_params();
  const std::uint32_t shipped = p.a;
  const auto found = find_full_period_twist(p, shipped - 4u, 8);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->a, shipped);
}

TEST(Dcmt, SmallGeometryFullPeriodSearch) {
  // A tiny geometry for fast exhaustive behaviour checks: p = 89
  // (n = 3, r = 7; 3·32 − 7 = 89, a Mersenne prime exponent).
  MtParams p{};
  p.n = 3;
  p.m = 1;
  p.r = 7;
  p.u = 11;
  p.d = 0xffffffffu;
  p.s = 7;
  p.b = 0x9d2c5680u;
  p.t = 15;
  p.c = 0xefc60000u;
  p.l = 18;
  p.f = 1812433253u;
  const auto found = find_full_period_twist(p, 0x80000001u, 64);
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(verify_full_period(*found));
  // And the found generator is usable + statistically sane.
  MersenneTwister mt(*found, 7u);
  std::uint32_t x = 0;
  for (int i = 0; i < 1000; ++i) x ^= mt.next();
  (void)x;
}

}  // namespace
}  // namespace dwi::rng
