// Tests for the uniform-to-normal transforms: accuracy of Giles'
// erfinv, bit-level correctness and accuracy of the FPGA-style
// segmented ICDF, acceptance rates of Marsaglia-Bray, and statistical
// normality of every transform's output (parameterized sweep).
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <span>
#include <vector>

#include "common/bits.h"
#include "rng/erfinv.h"
#include "rng/icdf_bitwise.h"
#include "rng/mersenne_twister.h"
#include "rng/normal.h"
#include "stats/distributions.h"
#include "stats/ks_test.h"
#include "stats/moments.h"
#include "stats/special.h"

namespace dwi::rng {
namespace {

TEST(ErfinvGiles, MatchesReferenceCentralRegion) {
  for (double x = -0.995; x < 0.999; x += 0.01) {
    const float approx = erfinv_giles(static_cast<float>(x));
    const double exact = stats::erf_inv(x);
    EXPECT_NEAR(approx, exact, 2e-5 * (1.0 + std::fabs(exact)))
        << "x=" << x;
  }
}

TEST(ErfinvGiles, MatchesReferenceTailRegion) {
  // w >= 5 branch: |x| close enough to 1 that -log(1-x²) ≥ 5, i.e.
  // x > ~0.99832, but still representable as a float distinct from 1.
  for (double d : {1e-3, 1e-4, 1e-5, 1e-6}) {
    const float xf = static_cast<float>(1.0 - d);
    ASSERT_LT(xf, 1.0f);
    const float approx = erfinv_giles(xf);
    const double exact = stats::erf_inv(static_cast<double>(xf));
    EXPECT_NEAR(approx / exact, 1.0, 2e-3) << "x=1-" << d;
  }
}

TEST(ErfinvGiles, OddSymmetry) {
  for (float x : {0.1f, 0.5f, 0.9f, 0.999f}) {
    EXPECT_FLOAT_EQ(erfinv_giles(-x), -erfinv_giles(x));
  }
  EXPECT_FLOAT_EQ(erfinv_giles(0.0f), 0.0f);
}

TEST(ErfinvGiles, ErfcinvIdentity) {
  for (float x : {0.5f, 1.0f, 1.5f}) {
    EXPECT_FLOAT_EQ(erfcinv_giles(x), erfinv_giles(1.0f - x));
  }
}

TEST(IcdfCuda, MedianAndQuartiles) {
  EXPECT_NEAR(normal_icdf_cuda(0x80000000u), 0.0f, 1e-6f);
  // u = 0.25 → Φ^{-1}(0.25) ≈ -0.6744898.
  EXPECT_NEAR(normal_icdf_cuda(0x40000000u), -0.6744898f, 1e-4f);
  EXPECT_NEAR(normal_icdf_cuda(0xc0000000u), 0.6744898f, 1e-4f);
}

TEST(IcdfCuda, AntisymmetricInInput) {
  for (std::uint32_t u : {0x10000000u, 0x3fffffffu, 0x00000100u}) {
    const float lo = normal_icdf_cuda(u);
    const float hi = normal_icdf_cuda(~u);  // reflected input
    EXPECT_NEAR(lo, -hi, 2e-5f * (1.0f + std::fabs(lo)));
  }
}

TEST(IcdfBitwise, AccurateAgainstReference) {
  // Sweep deterministic and random inputs; absolute error bound 1e-3,
  // and much tighter in the central region.
  std::mt19937 eng(17);
  double max_err = 0.0;
  for (int i = 0; i < 200000; ++i) {
    const auto u = static_cast<std::uint32_t>(eng());
    const IcdfResult r = normal_icdf_bitwise(u);
    if (!r.valid) continue;
    const double p = (static_cast<double>(u) + 0.5) * 0x1.0p-32;
    const double exact = stats::inverse_normal_cdf(p);
    max_err = std::max(max_err, std::fabs(r.value - exact));
  }
  EXPECT_LT(max_err, 1e-3);
}

TEST(IcdfBitwise, AccurateDeepInTheTails) {
  // Walk every octave: u = 2^k and reflections.
  for (unsigned k = 0; k < 31; ++k) {
    const std::uint32_t u = std::uint32_t{1} << k;
    const IcdfResult r = normal_icdf_bitwise(u);
    ASSERT_TRUE(r.valid);
    const double p = (static_cast<double>(u) + 0.5) * 0x1.0p-32;
    const double exact = stats::inverse_normal_cdf(p);
    EXPECT_NEAR(r.value, exact, 5e-3 * (1.0 + std::fabs(exact)))
        << "octave k=" << k;
  }
}

TEST(IcdfBitwise, SymmetryOfReflectedInputs) {
  std::mt19937 eng(23);
  for (int i = 0; i < 1000; ++i) {
    const auto u = static_cast<std::uint32_t>(eng()) | 1u;  // avoid the invalid word
    const IcdfResult lo = normal_icdf_bitwise(u);
    const IcdfResult hi = normal_icdf_bitwise(~u);
    ASSERT_TRUE(lo.valid && hi.valid);
    EXPECT_FLOAT_EQ(lo.value, -hi.value);
  }
}

TEST(IcdfBitwise, SingleInvalidWord) {
  EXPECT_FALSE(normal_icdf_bitwise(0u).valid);
  EXPECT_FALSE(normal_icdf_bitwise(0xffffffffu).valid);  // reflects to 0
  EXPECT_TRUE(normal_icdf_bitwise(1u).valid);
  EXPECT_TRUE(normal_icdf_bitwise(0x7fffffffu).valid);
  EXPECT_TRUE(normal_icdf_bitwise(0x80000000u).valid);
}

TEST(IcdfBitwise, MonotoneNondecreasingInInput) {
  // Φ^{-1} is strictly increasing; the piecewise fit must at least be
  // non-decreasing across segment boundaries on a coarse sweep.
  float prev = -100.0f;
  for (std::uint64_t u = 1; u < 0xffffffffull; u += 0x100000ull) {
    const IcdfResult r = normal_icdf_bitwise(static_cast<std::uint32_t>(u));
    ASSERT_TRUE(r.valid);
    EXPECT_GE(r.value, prev - 1e-4f) << "u=" << u;
    prev = r.value;
  }
}

TEST(IcdfBitwise, TableFootprintMatchesGeometry) {
  EXPECT_EQ(IcdfBitwiseTable::table_bits(), 31u * 8u * 3u * 32u);
}

TEST(MarsagliaBray, AcceptanceNearPiOver4) {
  MersenneTwister mt(mt19937_params(), 101u);
  int accepted = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const auto a = marsaglia_bray_attempt(mt.next(), mt.next());
    if (a.valid) ++accepted;
  }
  const double rate = static_cast<double>(accepted) / kN;
  EXPECT_NEAR(rate, std::atan(1.0), 0.005);  // π/4 ≈ 0.7854
}

TEST(MarsagliaBray, RejectsOutsideUnitDisk) {
  // u1 = u2 = max → v1 = v2 ≈ 1 → s ≈ 2 → reject.
  EXPECT_FALSE(marsaglia_bray_attempt(0xffffffffu, 0xffffffffu).valid);
  // u1, u2 at midpoint → v ≈ 0 → s ≈ 0 → reject (s == 0 guard).
  const auto mid = marsaglia_bray_attempt(0x80000000u, 0x80000000u);
  // (exactly zero can't occur with the open-interval mapping, so this
  // may be a tiny accepted value; only check it does not produce NaN)
  if (mid.valid) {
    EXPECT_TRUE(std::isfinite(mid.value));
  }
}

TEST(BoxMuller, ProducesFinitePairs) {
  MersenneTwister mt(mt19937_params(), 5u);
  for (int i = 0; i < 1000; ++i) {
    float second = 0.0f;
    const float first = box_muller(mt.next(), mt.next(), &second);
    EXPECT_TRUE(std::isfinite(first));
    EXPECT_TRUE(std::isfinite(second));
  }
}

TEST(NormalDispatch, UniformsPerAttempt) {
  EXPECT_EQ(uniforms_per_attempt(NormalTransform::kMarsagliaBray), 2u);
  EXPECT_EQ(uniforms_per_attempt(NormalTransform::kIcdfBitwise), 1u);
  EXPECT_EQ(uniforms_per_attempt(NormalTransform::kIcdfCuda), 1u);
  EXPECT_EQ(uniforms_per_attempt(NormalTransform::kBoxMuller), 2u);
}

TEST(NormalDispatch, AnalyticAcceptance) {
  EXPECT_NEAR(analytic_acceptance(NormalTransform::kMarsagliaBray),
              0.785398, 1e-5);
  EXPECT_DOUBLE_EQ(analytic_acceptance(NormalTransform::kIcdfCuda), 1.0);
}

// Parameterized statistical normality: every transform's accepted
// output stream must be N(0,1) by KS and by moments.
class TransformNormality
    : public ::testing::TestWithParam<NormalTransform> {};

TEST_P(TransformNormality, OutputIsStandardNormal) {
  const NormalTransform t = GetParam();
  MersenneTwister mt(mt19937_params(), 2024u);
  std::vector<double> xs;
  stats::RunningMoments m;
  constexpr int kWanted = 150000;
  xs.reserve(kWanted);
  while (xs.size() < kWanted) {
    const std::uint32_t u1 = mt.next();
    const std::uint32_t u2 =
        uniforms_per_attempt(t) == 2 ? mt.next() : 0u;
    const auto a = normal_attempt(t, u1, u2);
    if (!a.valid) continue;
    xs.push_back(a.value);
    m.add(static_cast<double>(a.value));
  }
  EXPECT_NEAR(m.mean(), 0.0, 0.01);
  EXPECT_NEAR(m.variance(), 1.0, 0.02);
  EXPECT_NEAR(m.skewness(), 0.0, 0.03);
  EXPECT_NEAR(m.excess_kurtosis(), 0.0, 0.08);

  const auto ks = stats::ks_test(
      std::span<const double>(xs),
      [](double x) { return stats::normal_cdf(x); });
  EXPECT_GT(ks.p_value, 1e-3)
      << to_string(t) << ": KS D=" << ks.statistic;
}

INSTANTIATE_TEST_SUITE_P(
    AllTransforms, TransformNormality,
    ::testing::Values(NormalTransform::kMarsagliaBray,
                      NormalTransform::kIcdfBitwise,
                      NormalTransform::kIcdfCuda,
                      NormalTransform::kBoxMuller),
    [](const ::testing::TestParamInfo<NormalTransform>& param_info) {
      switch (param_info.param) {
        case NormalTransform::kMarsagliaBray: return "MarsagliaBray";
        case NormalTransform::kIcdfBitwise: return "IcdfBitwise";
        case NormalTransform::kIcdfCuda: return "IcdfCuda";
        case NormalTransform::kBoxMuller: return "BoxMuller";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace dwi::rng
