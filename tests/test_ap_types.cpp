// Unit + property tests for the arbitrary-precision HLS types
// (ap_uint, ap_int, ap_fixed), including the 512-bit packing pattern
// the paper's Transfer block depends on (16 floats per word).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "common/bits.h"
#include "hls/ap_fixed.h"
#include "hls/ap_int.h"
#include "hls/ap_uint.h"

namespace dwi::hls {
namespace {

TEST(ApUint, ConstructionAndTruncation) {
  ap_uint<8> a(0x1ffu);
  EXPECT_EQ(a.to_uint64(), 0xffu);  // truncated modulo 2^8
  ap_uint<64> b(0xdeadbeefcafebabeull);
  EXPECT_EQ(b.to_uint64(), 0xdeadbeefcafebabeull);
}

TEST(ApUint, WidthConversion) {
  ap_uint<512> wide(42);
  ap_uint<32> narrow(wide);
  EXPECT_EQ(narrow.to_uint64(), 42u);
  ap_uint<512> back(narrow);
  EXPECT_EQ(back.to_uint64(), 42u);
}

TEST(ApUint, BitSetAndTest) {
  ap_uint<128> x;
  x.set_bit(0, true);
  x.set_bit(64, true);
  x.set_bit(127, true);
  EXPECT_TRUE(x.bit(0));
  EXPECT_TRUE(x.bit(64));
  EXPECT_TRUE(x.bit(127));
  EXPECT_FALSE(x.bit(1));
  x.set_bit(64, false);
  EXPECT_FALSE(x.bit(64));
}

TEST(ApUint, RangeReadWriteWithinLimb) {
  ap_uint<64> x;
  x.set_range(15, 8, 0xab);
  EXPECT_EQ(x.get_range64(15, 8), 0xabu);
  EXPECT_EQ(x.to_uint64(), 0xab00u);
}

TEST(ApUint, RangeReadWriteAcrossLimbBoundary) {
  ap_uint<128> x;
  x.set_range(79, 48, 0x12345678u);
  EXPECT_EQ(x.get_range64(79, 48), 0x12345678u);
  // Neighbours untouched.
  EXPECT_EQ(x.get_range64(47, 16), 0u);
  EXPECT_EQ(x.get_range64(111, 80), 0u);
}

TEST(ApUint, Pack16FloatsInto512Bits) {
  // Listing 4's packing: 16 single-precision values per 512-bit word.
  ap_uint<512> word;
  float values[16];
  for (int i = 0; i < 16; ++i) values[i] = 1.5f * static_cast<float>(i) - 3.0f;
  for (unsigned i = 0; i < 16; ++i) {
    word.set_range(i * 32 + 31, i * 32, float_to_bits(values[i]));
  }
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(bits_to_float(static_cast<std::uint32_t>(
                  word.get_range64(i * 32 + 31, i * 32))),
              values[i]);
  }
}

TEST(ApUint, ShiftsMatchUint64ForSmallWidths) {
  std::mt19937_64 eng(3);
  for (int it = 0; it < 200; ++it) {
    const std::uint64_t v = eng();
    const unsigned s = static_cast<unsigned>(eng() % 64);
    ap_uint<64> x(v);
    EXPECT_EQ((x << s).to_uint64(), v << s);
    EXPECT_EQ((x >> s).to_uint64(), v >> s);
  }
}

TEST(ApUint, ShiftAcrossLimbs) {
  ap_uint<192> x(1);
  ap_uint<192> y = x << 130;
  EXPECT_TRUE(y.bit(130));
  EXPECT_EQ((y >> 130).to_uint64(), 1u);
  EXPECT_TRUE((y >> 131).is_zero());
}

TEST(ApUint, AddSubWithCarryChain) {
  ap_uint<128> a;
  a.set_range(63, 0, ~std::uint64_t{0});
  ap_uint<128> b(1);
  ap_uint<128> sum = a + b;
  EXPECT_EQ(sum.get_range64(63, 0), 0u);
  EXPECT_TRUE(sum.bit(64));
  EXPECT_EQ((sum - b).get_range64(63, 0), ~std::uint64_t{0});
}

TEST(ApUint, AdditionWrapsModulo2PowW) {
  ap_uint<32> a(0xffffffffu);
  ap_uint<32> b(2);
  EXPECT_EQ((a + b).to_uint64(), 1u);
}

TEST(ApUint, MultiplicationMatchesUint64) {
  std::mt19937_64 eng(5);
  for (int it = 0; it < 200; ++it) {
    const std::uint64_t a = eng();
    const std::uint64_t b = eng();
    ap_uint<64> x(a);
    ap_uint<64> y(b);
    EXPECT_EQ((x * y).to_uint64(), a * b);
  }
}

TEST(ApUint, MultiplicationWide) {
  // (2^64 + 3) * (2^64 + 5) = 2^128 + 8·2^64 + 15; in 192 bits.
  ap_uint<192> a;
  a.set_bit(64, true);
  a += ap_uint<192>(3);
  ap_uint<192> b;
  b.set_bit(64, true);
  b += ap_uint<192>(5);
  ap_uint<192> p = a * b;
  EXPECT_EQ(p.get_range64(63, 0), 15u);
  EXPECT_EQ(p.get_range64(127, 64), 8u);
  EXPECT_TRUE(p.bit(128));
}

TEST(ApUint, ComparisonOrdering) {
  ap_uint<96> a(5);
  ap_uint<96> b;
  b.set_bit(64, true);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, ap_uint<96>(5));
}

TEST(ApUint, BitwiseOpsAndNot) {
  ap_uint<40> a(0b1100u);
  ap_uint<40> b(0b1010u);
  EXPECT_EQ((a & b).to_uint64(), 0b1000u);
  EXPECT_EQ((a | b).to_uint64(), 0b1110u);
  EXPECT_EQ((a ^ b).to_uint64(), 0b0110u);
  // ~0 in 40 bits is 2^40 - 1 (invariant: bits above W stay zero).
  EXPECT_EQ((~ap_uint<40>(0)).to_uint64(), (std::uint64_t{1} << 40) - 1);
}

TEST(ApUint, HexString) {
  ap_uint<16> a(0xbeef);
  EXPECT_EQ(a.to_hex_string(), "beef");
  ap_uint<12> b(0xabc);
  EXPECT_EQ(b.to_hex_string(), "abc");
}

TEST(ApInt, WrapAndSignExtension) {
  ap_int<8> a(127);
  EXPECT_EQ((a + ap_int<8>(1)).value(), -128);
  ap_int<8> b(-1);
  EXPECT_EQ(b.value(), -1);
  EXPECT_EQ((b >> 1).value(), -1);  // arithmetic shift
}

TEST(ApInt, ArithmeticMatchesInt64ForWidth16) {
  std::mt19937_64 eng(7);
  for (int it = 0; it < 300; ++it) {
    const auto a = static_cast<std::int16_t>(eng());
    const auto b = static_cast<std::int16_t>(eng());
    ap_int<16> x(a);
    ap_int<16> y(b);
    EXPECT_EQ((x + y).value(), static_cast<std::int16_t>(a + b));
    EXPECT_EQ((x - y).value(), static_cast<std::int16_t>(a - b));
    EXPECT_EQ((x * y).value(), static_cast<std::int16_t>(a * b));
  }
}

TEST(ApFixed, QuantizationTruncatesTowardNegInfinity) {
  using F = ap_fixed<16, 8>;  // 8 fractional bits, lsb = 1/256
  EXPECT_DOUBLE_EQ(F(1.0).to_double(), 1.0);
  EXPECT_DOUBLE_EQ(F(1.00390625).to_double(), 1.00390625);  // exact
  // 1.003 truncates down to 1.00390625 - 1/256? No: floor(1.003*256)=256.
  EXPECT_DOUBLE_EQ(F(1.003).to_double(), 1.0);
  EXPECT_DOUBLE_EQ(F(-1.003).to_double(), -1.00390625);  // toward -inf
}

TEST(ApFixed, AdditionExact) {
  using F = ap_fixed<32, 8>;
  F a(1.25);
  F b(2.5);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 3.75);
  EXPECT_DOUBLE_EQ((a - b).to_double(), -1.25);
}

TEST(ApFixed, MultiplicationFullPrecisionThenTruncate) {
  using F = ap_fixed<32, 8>;  // 24 frac bits
  F a(1.5);
  F b(2.25);
  EXPECT_DOUBLE_EQ((a * b).to_double(), 3.375);
}

TEST(ApFixed, MultiplicationTruncationProperty) {
  // For random values the fixed product never exceeds the real product
  // and differs by less than one LSB (AP_TRN behaviour)
  // (positive operands).
  using F = ap_fixed<32, 8>;
  std::mt19937_64 eng(11);
  std::uniform_real_distribution<double> ud(0.0, 8.0);
  for (int it = 0; it < 300; ++it) {
    const double a = ud(eng);
    const double b = ud(eng);
    const double exact = F(a).to_double() * F(b).to_double();
    const double fixed = (F(a) * F(b)).to_double();
    EXPECT_LE(fixed, exact + 1e-12);
    EXPECT_GT(fixed, exact - F::epsilon() - 1e-12);
  }
}

TEST(ApFixed, NegationAndComparison) {
  using F = ap_fixed<24, 6>;
  F a(2.5);
  EXPECT_DOUBLE_EQ((-a).to_double(), -2.5);
  EXPECT_LT(-a, a);
  EXPECT_EQ(a, F(2.5));
}

TEST(ApFixed, EpsilonIsLsb) {
  using F = ap_fixed<32, 5>;
  EXPECT_DOUBLE_EQ(F::epsilon(), std::exp2(-27));
}

TEST(ApFixed, WrapOnOverflow) {
  using F = ap_fixed<8, 4>;  // range [-8, 8), lsb 1/16
  // 8.0 wraps to -8.0 (AP_WRAP).
  EXPECT_DOUBLE_EQ(F(8.0).to_double(), -8.0);
}

}  // namespace
}  // namespace dwi::hls
