// Inter-kernel pipeline tests, two layers:
//
//   * finance/pipeline: run_piped must be bit-identical to run_staged
//     for every pipe depth, scenario-block size and stream strategy
//     (the tape contract of core/pipeline_kernels.h), indifferent to
//     the exec-pool thread count, and statistically consistent with
//     the scalar per-draw reference;
//   * fpga/pipeline_sim + scheduler: stall/cycle invariants of the
//     cycle-level model (deeper pipes never slower, convergence to the
//     analytic sink bound, determinism) and the pipe-depth-as-
//     dependence-distance RecMII of inter_kernel_chain_graph.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "exec/thread_pool.h"
#include "finance/pipeline.h"
#include "finance/portfolio.h"
#include "fpga/pipeline_sim.h"
#include "fpga/scheduler.h"

namespace dwi {
namespace {

finance::Portfolio small_portfolio() {
  return finance::Portfolio::synthetic(
      6, {{1.39, "representative"}, {0.8, "stable"}, {2.0, "volatile"}}, 11u);
}

bool bit_identical(const finance::LossDistribution& a,
                   const finance::LossDistribution& b) {
  return a.losses().size() == b.losses().size() &&
         std::memcmp(a.losses().data(), b.losses().data(),
                     a.losses().size() * sizeof(double)) == 0;
}

// ---------------------------------------------- finance/pipeline ----------

TEST(PipelineIdentity, PipedMatchesStagedForEveryDepthBlockAndStrategy) {
  const finance::Portfolio portfolio = small_portfolio();
  for (const auto strategy : {rng::StreamStrategy::kDistinctSeeds,
                              rng::StreamStrategy::kJumpAhead,
                              rng::StreamStrategy::kCounterBased}) {
    finance::PipelineConfig cfg;
    cfg.num_scenarios = 700;
    cfg.seed = 5;
    cfg.strategy = strategy;
    const finance::LossDistribution staged =
        finance::run_staged(portfolio, cfg);
    ASSERT_EQ(staged.scenarios(), 700u);
    for (const std::size_t depth : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}, std::size_t{64}}) {
      for (const std::size_t block :
           {std::size_t{1}, std::size_t{3}, std::size_t{256}}) {
        cfg.pipe_depth = depth;
        cfg.scenario_block = block;
        const finance::LossDistribution piped =
            finance::run_piped(portfolio, cfg);
        EXPECT_TRUE(bit_identical(staged, piped))
            << "strategy=" << static_cast<int>(strategy)
            << " depth=" << depth << " block=" << block;
      }
    }
  }
}

TEST(PipelineIdentity, RoundSizeIsPartOfTheTapeButDepthIsNot) {
  // Changing the pipe depth must not move a bit; changing the round
  // size re-cuts the uniform tape and legitimately changes values.
  const finance::Portfolio portfolio = small_portfolio();
  finance::PipelineConfig cfg;
  cfg.num_scenarios = 300;
  cfg.seed = 3;
  const finance::LossDistribution base = finance::run_piped(portfolio, cfg);

  cfg.pipe_depth = 1;
  EXPECT_TRUE(bit_identical(base, finance::run_piped(portfolio, cfg)));

  cfg.pipe_depth = 8;
  cfg.round = 512;  // different attempt rounds → different tape
  const finance::LossDistribution other = finance::run_piped(portfolio, cfg);
  EXPECT_FALSE(bit_identical(base, other));
  // ... but staged sees exactly the same re-cut tape.
  EXPECT_TRUE(bit_identical(other, finance::run_staged(portfolio, cfg)));
}

TEST(PipelineIdentity, ExecPoolThreadCountCannotMoveBits) {
  struct Guard {
    ~Guard() { exec::set_thread_count(0); }
  } guard;
  const finance::Portfolio portfolio = small_portfolio();
  finance::PipelineConfig cfg;
  cfg.num_scenarios = 400;
  cfg.seed = 9;
  exec::set_thread_count(1);
  const finance::LossDistribution serial = finance::run_piped(portfolio, cfg);
  const finance::LossDistribution serial_staged =
      finance::run_staged(portfolio, cfg);
  exec::set_thread_count(4);
  const finance::LossDistribution pooled = finance::run_piped(portfolio, cfg);
  const finance::LossDistribution pooled_staged =
      finance::run_staged(portfolio, cfg);
  EXPECT_TRUE(bit_identical(serial, pooled));
  EXPECT_TRUE(bit_identical(serial_staged, pooled_staged));
  EXPECT_TRUE(bit_identical(serial, serial_staged));
}

TEST(PipelineIdentity, ScalarReferenceAgreesStatistically) {
  // The per-draw reference samples the same model through a different
  // tape: means must agree loosely, bits must not be expected to.
  const finance::Portfolio portfolio = small_portfolio();
  finance::PipelineConfig cfg;
  cfg.num_scenarios = 20'000;
  cfg.seed = 17;
  const finance::LossDistribution piped = finance::run_piped(portfolio, cfg);
  const finance::LossDistribution scalar =
      finance::run_scalar_reference(portfolio, cfg);
  ASSERT_EQ(scalar.scenarios(), piped.scenarios());
  const double expected = portfolio.expected_loss();
  ASSERT_GT(expected, 0.0);
  EXPECT_NEAR(piped.mean() / expected, 1.0, 0.10);
  EXPECT_NEAR(scalar.mean() / expected, 1.0, 0.10);
  EXPECT_NEAR(scalar.mean() / piped.mean(), 1.0, 0.10);
}

TEST(PipelineStats, PipedRunReportsRoundsAcceptanceAndStalls) {
  const finance::Portfolio portfolio = small_portfolio();
  finance::PipelineConfig cfg;
  cfg.num_scenarios = 500;
  cfg.pipe_depth = 2;
  finance::PipelineStats piped_stats;
  (void)finance::run_piped(portfolio, cfg, &piped_stats);
  EXPECT_GT(piped_stats.rounds_produced, 0u);
  EXPECT_GT(piped_stats.attempts, 0u);
  // At least one gamma variate per (sector, scenario); rounds are
  // fixed-size, so the tail round over-produces a discarded surplus.
  EXPECT_GE(piped_stats.accepted,
            cfg.num_scenarios * portfolio.num_sectors());
  EXPECT_GE(piped_stats.attempts, piped_stats.accepted);

  finance::PipelineStats staged_stats;
  (void)finance::run_staged(portfolio, cfg, &staged_stats);
  EXPECT_GE(staged_stats.epochs, 1u);
  EXPECT_GE(staged_stats.accepted,
            cfg.num_scenarios * portfolio.num_sectors());
}

TEST(PipelineConfigValidation, RejectsDegenerateConfigs) {
  const finance::Portfolio portfolio = small_portfolio();
  finance::PipelineConfig cfg;
  cfg.num_scenarios = 1;  // below the minimum of 2
  EXPECT_THROW(finance::run_staged(portfolio, cfg), Error);
  EXPECT_THROW(finance::run_piped(portfolio, cfg), Error);
  cfg.num_scenarios = 100;
  cfg.pipe_depth = 0;
  EXPECT_THROW(finance::run_piped(portfolio, cfg), Error);
}

// ------------------------------------------- fpga/pipeline_sim ------------

fpga::PipelineSimConfig chain_config(std::size_t depth) {
  fpga::PipelineSimConfig cfg;
  cfg.stages = {{"uniform", 1, 8, 1.0, 11},
                {"normal", 1, 24, 0.785, 22},
                {"gamma", 1, 64, 0.95, 33},
                {"aggregate", 1, 16, 1.0, 44}};
  cfg.pipe_depth = depth;
  cfg.outputs = 20'000;
  return cfg;
}

TEST(PipelineSim, DeeperPipesAreNeverSlower) {
  std::uint64_t prev = ~std::uint64_t{0};
  for (const std::size_t depth : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{8},
                                  std::size_t{64}}) {
    const fpga::PipelineSimResult r =
        fpga::simulate_pipeline(chain_config(depth));
    EXPECT_GE(r.outputs, 20'000u);
    EXPECT_LE(r.cycles, prev) << "depth " << depth << " slowed the chain";
    prev = r.cycles;
  }
}

TEST(PipelineSim, DeterministicAcrossRuns) {
  const fpga::PipelineSimResult a = fpga::simulate_pipeline(chain_config(8));
  const fpga::PipelineSimResult b = fpga::simulate_pipeline(chain_config(8));
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.bursts, b.bursts);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    EXPECT_EQ(a.stages[s].tokens_out, b.stages[s].tokens_out);
    EXPECT_EQ(a.stages[s].full_stalls, b.stages[s].full_stalls);
    EXPECT_EQ(a.stages[s].empty_stalls, b.stages[s].empty_stalls);
  }
}

TEST(PipelineSim, ConvergesToTheAnalyticSinkBound) {
  fpga::PipelineSimConfig cfg = chain_config(64);
  cfg.outputs = 100'000;  // long run: startup transient is negligible
  const fpga::PipelineSimResult r = fpga::simulate_pipeline(cfg);
  const double bound = fpga::analytic_sink_rate(cfg);
  ASSERT_GT(bound, 0.0);
  // The achieved rate can exceed the steady-state bound slightly
  // (acceptance draws are stochastic around the mean) but must sit
  // within a tight band of it.
  EXPECT_NEAR(r.outputs_per_cycle() / bound, 1.0, 0.10);
}

TEST(PipelineSim, BottleneckIsTheLowestThroughputStage) {
  // With generous depth, stages upstream of the gamma filter mostly
  // freeze on full pipes and downstream ones starve; either way the
  // bottleneck index must be a valid stage.
  const fpga::PipelineSimResult r = fpga::simulate_pipeline(chain_config(2));
  EXPECT_LT(r.bottleneck_stage(), r.stages.size());
  std::uint64_t total_stalls = 0;
  for (const auto& st : r.stages) {
    total_stalls += st.full_stalls + st.empty_stalls;
  }
  EXPECT_GT(total_stalls, 0u);
}

TEST(PipelineSim, RejectsDegenerateConfigs) {
  fpga::PipelineSimConfig cfg = chain_config(8);
  cfg.stages.clear();
  EXPECT_THROW(fpga::simulate_pipeline(cfg), Error);
  cfg = chain_config(0);
  EXPECT_THROW(fpga::simulate_pipeline(cfg), Error);
  cfg = chain_config(8);
  cfg.stages[1].acceptance = 0.0;
  EXPECT_THROW(fpga::simulate_pipeline(cfg), Error);
  cfg = chain_config(8);
  cfg.stages[2].initiation_interval = 0;
  EXPECT_THROW(fpga::simulate_pipeline(cfg), Error);
}

// --------------------------------------- scheduler chain graph ------------

TEST(InterKernelChainGraph, PipeDepthIsTheDependenceDistance) {
  // Two kernels around one pipe: the FIFO-capacity recurrence carries
  // latency l0 + l1 over distance `depth`, so RecMII = ceil((l0+l1)/D).
  const std::vector<unsigned> lat = {10, 20};
  EXPECT_EQ(fpga::inter_kernel_chain_graph(lat, 1).recurrence_mii(), 30u);
  EXPECT_EQ(fpga::inter_kernel_chain_graph(lat, 3).recurrence_mii(), 10u);
  EXPECT_EQ(fpga::inter_kernel_chain_graph(lat, 30).recurrence_mii(), 1u);
}

TEST(InterKernelChainGraph, LongChainTakesTheWorstAdjacentPair) {
  const std::vector<unsigned> lat = {8, 24, 64, 16};
  // Adjacent-pair sums: 32, 88, 80 → worst 88.
  EXPECT_EQ(fpga::inter_kernel_chain_graph(lat, 1).recurrence_mii(), 88u);
  EXPECT_EQ(fpga::inter_kernel_chain_graph(lat, 8).recurrence_mii(), 11u);
  EXPECT_EQ(fpga::inter_kernel_chain_graph(lat, 64).recurrence_mii(), 2u);
}

TEST(InterKernelChainGraph, DeeperPipesMonotonicallyRelaxTheRecurrence) {
  const std::vector<unsigned> lat = {12, 48, 31};
  unsigned prev = ~0u;
  for (unsigned depth = 1; depth <= 16; ++depth) {
    const unsigned mii =
        fpga::inter_kernel_chain_graph(lat, depth).recurrence_mii();
    EXPECT_LE(mii, prev);
    prev = mii;
  }
  EXPECT_EQ(prev, static_cast<unsigned>(std::ceil((48.0 + 31.0) / 16.0)));
}

TEST(InterKernelChainGraph, SingleKernelHasNoRecurrence) {
  EXPECT_EQ(fpga::inter_kernel_chain_graph({40}, 1).recurrence_mii(), 1u);
  EXPECT_THROW(fpga::inter_kernel_chain_graph({}, 4), Error);
  EXPECT_THROW(fpga::inter_kernel_chain_graph({10, 10}, 0), Error);
}

}  // namespace
}  // namespace dwi
