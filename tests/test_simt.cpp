// Tests for the SIMT lockstep engine: executor masking/cost semantics,
// platform model mechanisms (divergence, state spill, work-group and
// global-size factors), functional correctness of the lockstep gamma
// kernel, and the qualitative Table III orderings the model must
// reproduce.
#include <gtest/gtest.h>

#include <span>

#include "rng/configs.h"
#include "simt/executor.h"
#include "simt/gamma_kernel.h"
#include "simt/ops.h"
#include "simt/platform.h"
#include "simt/runtime_estimator.h"
#include "stats/distributions.h"
#include "stats/ks_test.h"
#include "stats/moments.h"

namespace dwi::simt {
namespace {

OpCostTable unit_costs() {
  OpCostTable t;
  for (auto& s : t.slots) s = 1.0;
  return t;
}

TEST(Executor, FullMaskWidths) {
  LockstepPartition p8(8, unit_costs());
  EXPECT_EQ(p8.full_mask(), 0xffu);
  LockstepPartition p64(64, unit_costs());
  EXPECT_EQ(p64.full_mask(), ~Mask{0});
}

TEST(Executor, RejectsBadWidth) {
  const auto c = unit_costs();
  EXPECT_THROW(LockstepPartition(0, c), dwi::Error);
  EXPECT_THROW(LockstepPartition(65, c), dwi::Error);
  EXPECT_THROW(LockstepPartition(8, c, 1.5), dwi::Error);
}

TEST(Executor, EmptyMaskSkipsRegion) {
  LockstepPartition p(8, unit_costs());
  int calls = 0;
  p.region(0, p.full_mask(), OpBundle{}.add(OpClass::kIntAlu, 5),
           [&](unsigned) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_DOUBLE_EQ(p.stats().issued_slots, 0.0);
  EXPECT_EQ(p.stats().regions, 0u);
}

TEST(Executor, FullMaskChargesOnceRunsAllLanes) {
  LockstepPartition p(8, unit_costs());
  int calls = 0;
  const auto ops = OpBundle{}.add(OpClass::kFloatMul, 3);
  p.region(p.full_mask(), p.full_mask(), ops, [&](unsigned) { ++calls; });
  EXPECT_EQ(calls, 8);
  EXPECT_DOUBLE_EQ(p.stats().issued_slots, 3.0);
  EXPECT_DOUBLE_EQ(p.stats().useful_slots, 24.0);
  EXPECT_EQ(p.stats().divergent_regions, 0u);
  EXPECT_DOUBLE_EQ(p.stats().simd_efficiency(8), 1.0);
}

TEST(Executor, DivergentRegionPredicationCost) {
  // scalarization 0 (GPU): a divergent region still costs the full
  // bundle once — the idle lanes are pure waste (Fig 2b).
  LockstepPartition p(8, unit_costs(), 0.0);
  const auto ops = OpBundle{}.add(OpClass::kLog, 2);
  p.region(0b0000'0011, p.full_mask(), ops, [](unsigned) {});
  EXPECT_DOUBLE_EQ(p.stats().issued_slots, 2.0);
  EXPECT_DOUBLE_EQ(p.stats().useful_slots, 4.0);  // 2 slots × 2 lanes
  EXPECT_EQ(p.stats().divergent_regions, 1u);
  EXPECT_DOUBLE_EQ(p.stats().simd_efficiency(8), 4.0 / 16.0);
}

TEST(Executor, DivergentRegionScalarizationCost) {
  // scalarization 1 (CPU): a divergent region serializes per active
  // lane: cost × active_lanes.
  LockstepPartition p(8, unit_costs(), 1.0);
  const auto ops = OpBundle{}.add(OpClass::kLog, 2);
  p.region(0b0000'0111, p.full_mask(), ops, [](unsigned) {});
  EXPECT_DOUBLE_EQ(p.stats().issued_slots, 2.0 * 3.0);
}

TEST(Executor, PartialScalarizationInterpolates) {
  LockstepPartition p(8, unit_costs(), 0.5);
  const auto ops = OpBundle{}.add(OpClass::kSqrt, 4);
  p.region(0b0000'1111, p.full_mask(), ops, [](unsigned) {});
  // 4 × (0.5 + 0.5·4) = 10
  EXPECT_DOUBLE_EQ(p.stats().issued_slots, 10.0);
}

TEST(Executor, NonDivergentSubsetOfParent) {
  // mask == parent (even if not all lanes) is NOT divergent: the
  // enclosing flow already narrowed.
  LockstepPartition p(8, unit_costs(), 1.0);
  const auto ops = OpBundle{}.add(OpClass::kIntAlu, 1);
  p.region(0b0011, 0b0011, ops, [](unsigned) {});
  EXPECT_EQ(p.stats().divergent_regions, 0u);
  EXPECT_DOUBLE_EQ(p.stats().issued_slots, 1.0);
}

TEST(OpBundle, AdditionAndCost) {
  OpBundle a = OpBundle{}.add(OpClass::kLog, 2).add(OpClass::kIntAlu, 3);
  OpBundle b = OpBundle{}.add(OpClass::kLog, 1);
  OpBundle c = a + b;
  EXPECT_EQ(c.count(OpClass::kLog), 3u);
  EXPECT_EQ(c.count(OpClass::kIntAlu), 3u);
  OpCostTable t;
  t.slots[static_cast<std::size_t>(OpClass::kLog)] = 10.0;
  t.slots[static_cast<std::size_t>(OpClass::kIntAlu)] = 1.0;
  EXPECT_DOUBLE_EQ(t.cost(c), 33.0);
}

TEST(Platform, GeometryMatchesPaper) {
  EXPECT_EQ(cpu_haswell().width, 8u);
  EXPECT_EQ(gpu_tesla_k80().width, 32u);
  EXPECT_EQ(phi_7120p().width, 16u);
  EXPECT_DOUBLE_EQ(cpu_haswell().clock_hz, 2.3e9);
  EXPECT_DOUBLE_EQ(gpu_tesla_k80().clock_hz, 0.56e9);
  EXPECT_DOUBLE_EQ(phi_7120p().clock_hz, 1.238e9);
  EXPECT_EQ(paper_optimal_local_size(PlatformId::kCpu), 8u);
  EXPECT_EQ(paper_optimal_local_size(PlatformId::kGpu), 64u);
  EXPECT_EQ(paper_optimal_local_size(PlatformId::kPhi), 16u);
}

TEST(Platform, MtSpillOnlyAboveThreshold) {
  const auto& gpu = gpu_tesla_k80();
  const auto small = gpu.mt_step_bundle(272);     // Config2: 4×17×4 B
  const auto large = gpu.mt_step_bundle(9984);    // Config1: 4×624×4 B
  EXPECT_EQ(small.count(OpClass::kStateSpill), 0u);
  EXPECT_EQ(large.count(OpClass::kStateSpill), 1u);
  // The CPU's caches absorb even the large state (Table III: CPU is
  // insensitive to the MT period).
  const auto& cpu = cpu_haswell();
  EXPECT_EQ(cpu.mt_step_bundle(9984).count(OpClass::kStateSpill), 0u);
}

TEST(Platform, WorkGroupFactorHasPaperOptimum) {
  // Fig 5a: the optimum localSize must be 8 / 64 / 16 on CPU / GPU /
  // PHI among the power-of-two sweep the paper plots.
  for (const PlatformModel* p :
       {&cpu_haswell(), &gpu_tesla_k80(), &phi_7120p()}) {
    const std::uint64_t state = 9984;  // Config1
    unsigned best = 0;
    double best_f = 1e300;
    for (unsigned l = 1; l <= 512; l *= 2) {
      const double f = p->work_group_factor(l, state);
      if (f < best_f) {
        best_f = f;
        best = l;
      }
    }
    EXPECT_EQ(best, paper_optimal_local_size(p->id)) << p->name;
  }
}

TEST(Platform, WorkGroupFactorPenalizesUnderfill) {
  const auto& cpu = cpu_haswell();
  EXPECT_GT(cpu.work_group_factor(1, 272), cpu.work_group_factor(8, 272));
}

TEST(Platform, GlobalSizeFactorUShape) {
  // Fig 5b: small global sizes underutilize, very large ones pay
  // per-work-item seeding; 65536 must be (near-)optimal.
  const auto& gpu = gpu_tesla_k80();
  const double init = 60000.0;  // ~ MT19937 ×4 seeding cost
  const double work = 5e9;
  const double f_small = gpu.global_size_factor(1024, init, work);
  const double f_opt = gpu.global_size_factor(65536, init, work);
  const double f_large = gpu.global_size_factor(1u << 20, init, work);
  EXPECT_GT(f_small, f_opt);
  EXPECT_GT(f_large, f_opt);
}

TEST(GammaKernel, ProducesExactQuota) {
  const auto& cfg = rng::config(rng::ConfigId::kConfig2);
  const auto r = run_gamma_partition(cpu_haswell(), cfg,
                                     rng::NormalTransform::kMarsagliaBray,
                                     1.39f, 100, 7u);
  EXPECT_EQ(r.outputs.size(), 8u * 100u);
  EXPECT_EQ(r.accepted, 800u);
  EXPECT_GT(r.attempts, r.accepted);
}

TEST(GammaKernel, OutputDistributionIsGamma) {
  const auto& cfg = rng::config(rng::ConfigId::kConfig2);
  std::vector<float> all;
  for (std::uint32_t s = 0; s < 12; ++s) {
    const auto r = run_gamma_partition(gpu_tesla_k80(), cfg,
                                       rng::NormalTransform::kMarsagliaBray,
                                       1.39f, 250, 1000 + s);
    all.insert(all.end(), r.outputs.begin(), r.outputs.end());
  }
  const auto g = stats::GammaParams::from_sector_variance(1.39);
  const auto ks = stats::ks_test(
      std::span<const float>(all),
      [&](double x) { return stats::gamma_cdf(x, g.shape, g.scale); });
  EXPECT_GT(ks.p_value, 1e-4) << "KS D=" << ks.statistic;
}

TEST(GammaKernel, RejectionRatesOrdered) {
  // §IV-E: ICDF configs reject far less than MB configs.
  const auto mb = run_gamma_partition(
      phi_7120p(), rng::config(rng::ConfigId::kConfig1),
      rng::NormalTransform::kMarsagliaBray, 1.39f, 400, 3u);
  const auto icdf = run_gamma_partition(
      phi_7120p(), rng::config(rng::ConfigId::kConfig3),
      rng::NormalTransform::kIcdfCuda, 1.39f, 400, 3u);
  EXPECT_GT(mb.rejection_rate(), 0.18);
  EXPECT_LT(icdf.rejection_rate(), 0.10);
}

TEST(GammaKernel, CounterBasedStrategyProducesQuotaAndIsDeterministic) {
  const auto& cfg = rng::config(rng::ConfigId::kConfig2);
  const auto a = run_gamma_partition(cpu_haswell(), cfg,
                                     rng::NormalTransform::kMarsagliaBray,
                                     1.39f, 100, 7u,
                                     rng::StreamStrategy::kCounterBased);
  EXPECT_EQ(a.outputs.size(), 8u * 100u);
  EXPECT_EQ(a.accepted, 800u);
  const auto b = run_gamma_partition(cpu_haswell(), cfg,
                                     rng::NormalTransform::kMarsagliaBray,
                                     1.39f, 100, 7u,
                                     rng::StreamStrategy::kCounterBased);
  EXPECT_EQ(a.outputs, b.outputs);
  // A different stream family than distinct seeds, same statistics.
  const auto seeded = run_gamma_partition(
      cpu_haswell(), cfg, rng::NormalTransform::kMarsagliaBray, 1.39f, 100,
      7u, rng::StreamStrategy::kDistinctSeeds);
  EXPECT_NE(a.outputs, seeded.outputs);
}

TEST(GammaKernel, CounterBasedOutputDistributionIsGamma) {
  const auto& cfg = rng::config(rng::ConfigId::kConfig2);
  std::vector<float> all;
  for (std::uint32_t s = 0; s < 12; ++s) {
    const auto r = run_gamma_partition(gpu_tesla_k80(), cfg,
                                       rng::NormalTransform::kMarsagliaBray,
                                       1.39f, 250, 2000 + s,
                                       rng::StreamStrategy::kCounterBased);
    all.insert(all.end(), r.outputs.begin(), r.outputs.end());
  }
  const auto g = stats::GammaParams::from_sector_variance(1.39);
  const auto ks = stats::ks_test(
      std::span<const float>(all),
      [&](double x) { return stats::gamma_cdf(x, g.shape, g.scale); });
  EXPECT_GT(ks.p_value, 1e-4) << "KS D=" << ks.statistic;
}

TEST(GammaKernel, RejectsJumpAheadStrategy) {
  EXPECT_ANY_THROW(run_gamma_partition(
      cpu_haswell(), rng::config(rng::ConfigId::kConfig2),
      rng::NormalTransform::kMarsagliaBray, 1.39f, 10, 1u,
      rng::StreamStrategy::kJumpAhead));
}

TEST(GammaKernel, WiderPartitionsLoseMoreToDivergence) {
  // Fig 2's core claim: with everything else equal, SIMD efficiency
  // falls as the hardware partition gets wider — wider groups are more
  // likely to contain at least one lane on the rare branch side, so the
  // partition issues both sides more often.
  const auto& cfg = rng::config(rng::ConfigId::kConfig2);
  PlatformModel narrow_model = gpu_tesla_k80();
  narrow_model.width = 4;
  PlatformModel wide_model = gpu_tesla_k80();
  wide_model.width = 64;
  const auto narrow = run_gamma_partition(
      narrow_model, cfg, rng::NormalTransform::kMarsagliaBray, 1.39f,
      300, 5u);
  const auto wide = run_gamma_partition(
      wide_model, cfg, rng::NormalTransform::kMarsagliaBray, 1.39f,
      300, 5u);
  EXPECT_LT(wide.stats.simd_efficiency(64),
            narrow.stats.simd_efficiency(4));
}

TEST(RuntimeEstimator, TableIiiOrderings) {
  // The qualitative Table III relations the model must reproduce:
  NdRangeWorkload w;
  auto ms = [&](PlatformId pid, rng::ConfigId cid,
                rng::NormalTransform t) {
    return estimate_runtime(platform(pid), rng::config(cid), t, w)
               .seconds * 1e3;
  };
  using rng::ConfigId;
  using rng::NormalTransform;

  // CPU is insensitive to the MT period...
  const double cpu1 = ms(PlatformId::kCpu, ConfigId::kConfig1,
                         NormalTransform::kMarsagliaBray);
  const double cpu2 = ms(PlatformId::kCpu, ConfigId::kConfig2,
                         NormalTransform::kMarsagliaBray);
  EXPECT_NEAR(cpu1 / cpu2, 1.0, 0.05);
  // ...but GPU speeds up ~2x with the small-state twister.
  const double gpu1 = ms(PlatformId::kGpu, ConfigId::kConfig1,
                         NormalTransform::kMarsagliaBray);
  const double gpu2 = ms(PlatformId::kGpu, ConfigId::kConfig2,
                         NormalTransform::kMarsagliaBray);
  EXPECT_GT(gpu1 / gpu2, 1.7);

  // ICDF CUDA-style beats Marsaglia-Bray on the CPU by a wide margin.
  const double cpu3 = ms(PlatformId::kCpu, ConfigId::kConfig3,
                         NormalTransform::kIcdfCuda);
  EXPECT_GT(cpu1 / cpu3, 2.5);

  // FPGA-style bitwise ICDF is much slower than CUDA-style on CPU and
  // PHI but about the same on GPU (Table III footnote 1).
  const double cpu3f = ms(PlatformId::kCpu, ConfigId::kConfig3,
                          NormalTransform::kIcdfBitwise);
  EXPECT_GT(cpu3f / cpu3, 2.0);
  const double phi3 = ms(PlatformId::kPhi, ConfigId::kConfig3,
                         NormalTransform::kIcdfCuda);
  const double phi3f = ms(PlatformId::kPhi, ConfigId::kConfig3,
                          NormalTransform::kIcdfBitwise);
  EXPECT_GT(phi3f / phi3, 2.5);
  const double gpu3 = ms(PlatformId::kGpu, ConfigId::kConfig3,
                         NormalTransform::kIcdfCuda);
  const double gpu3f = ms(PlatformId::kGpu, ConfigId::kConfig3,
                          NormalTransform::kIcdfBitwise);
  EXPECT_NEAR(gpu3f / gpu3, 1.0, 0.15);

  // PHI beats CPU and GPU in every configuration (Table III).
  for (auto cid : {ConfigId::kConfig1, ConfigId::kConfig2}) {
    const double phi = ms(PlatformId::kPhi, cid,
                          NormalTransform::kMarsagliaBray);
    EXPECT_LT(phi, ms(PlatformId::kCpu, cid,
                      NormalTransform::kMarsagliaBray));
    EXPECT_LT(phi, ms(PlatformId::kGpu, cid,
                      NormalTransform::kMarsagliaBray));
  }
}

TEST(RuntimeEstimator, AbsoluteValuesWithinBand) {
  // Calibration regression guard: each fixed-architecture Table III
  // cell must stay within ±35 % of the paper's value (EXPERIMENTS.md
  // records the exact achieved deviations).
  NdRangeWorkload w;
  struct Cell {
    PlatformId pid;
    rng::ConfigId cid;
    rng::NormalTransform t;
    double paper_ms;
  };
  using rng::ConfigId;
  using rng::NormalTransform;
  const Cell cells[] = {
      {PlatformId::kCpu, ConfigId::kConfig1, NormalTransform::kMarsagliaBray, 3825},
      {PlatformId::kGpu, ConfigId::kConfig1, NormalTransform::kMarsagliaBray, 2479},
      {PlatformId::kPhi, ConfigId::kConfig1, NormalTransform::kMarsagliaBray, 996},
      {PlatformId::kCpu, ConfigId::kConfig2, NormalTransform::kMarsagliaBray, 3883},
      {PlatformId::kGpu, ConfigId::kConfig2, NormalTransform::kMarsagliaBray, 1011},
      {PlatformId::kPhi, ConfigId::kConfig2, NormalTransform::kMarsagliaBray, 696},
      {PlatformId::kCpu, ConfigId::kConfig3, NormalTransform::kIcdfCuda, 807},
      {PlatformId::kGpu, ConfigId::kConfig3, NormalTransform::kIcdfCuda, 1177},
      {PlatformId::kPhi, ConfigId::kConfig3, NormalTransform::kIcdfCuda, 555},
      {PlatformId::kCpu, ConfigId::kConfig4, NormalTransform::kIcdfCuda, 839},
      {PlatformId::kGpu, ConfigId::kConfig4, NormalTransform::kIcdfCuda, 522},
      {PlatformId::kPhi, ConfigId::kConfig4, NormalTransform::kIcdfCuda, 460},
  };
  for (const auto& c : cells) {
    const double ms =
        estimate_runtime(platform(c.pid), rng::config(c.cid), c.t, w)
            .seconds * 1e3;
    EXPECT_NEAR(ms / c.paper_ms, 1.0, 0.35)
        << to_string(c.pid) << " " << rng::config(c.cid).name;
  }
}

TEST(RuntimeEstimator, ValidatesWorkload) {
  NdRangeWorkload w;
  w.global_size = 4;  // below one partition
  EXPECT_THROW(estimate_runtime(gpu_tesla_k80(),
                                rng::config(rng::ConfigId::kConfig1),
                                rng::NormalTransform::kMarsagliaBray, w),
               dwi::Error);
}

}  // namespace
}  // namespace dwi::simt
