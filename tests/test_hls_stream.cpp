// Depth-edge and end-of-stream behavior of the two channel types:
// hls::stream (single-dataflow-region FIFO, no termination concept)
// and hls::Pipe (inter-kernel channel with close()/drained() and stall
// accounting). The non-blocking pairs are exercised exactly at the
// full/empty boundaries — the cases a resident kernel's control
// channel depends on.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.h"
#include "hls/pipe.h"
#include "hls/stream.h"

namespace dwi {
namespace {

// ---------------------------------------------------------------- stream --

TEST(HlsStream, NonBlockingWriteStopsExactlyAtDepth) {
  hls::stream<int> s(3);
  EXPECT_TRUE(s.write_nb(1));
  EXPECT_TRUE(s.write_nb(2));
  EXPECT_TRUE(s.write_nb(3));
  EXPECT_TRUE(s.full());
  EXPECT_FALSE(s.write_nb(4));  // full: rejected, not queued
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.total_writes(), 3u);  // the rejected write is not counted

  int v = 0;
  EXPECT_TRUE(s.read_nb(v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(s.full());
  EXPECT_TRUE(s.write_nb(4));  // one slot freed, one write fits again
  EXPECT_FALSE(s.write_nb(5));
}

TEST(HlsStream, NonBlockingReadStopsExactlyAtEmpty) {
  hls::stream<int> s(2);
  int v = -1;
  EXPECT_FALSE(s.read_nb(v));
  EXPECT_EQ(v, -1);  // a failed read must not touch the output

  s.write(7);
  EXPECT_TRUE(s.read_nb(v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(s.read_nb(v));  // empty again
  EXPECT_TRUE(s.empty());
}

TEST(HlsStream, DepthOneAlternatesFullEmpty) {
  // The degenerate FIFO: every occupancy state is a boundary state.
  hls::stream<int> s(1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(s.write_nb(i));
    EXPECT_TRUE(s.full());
    EXPECT_FALSE(s.write_nb(100 + i));
    int v = -1;
    EXPECT_TRUE(s.read_nb(v));
    EXPECT_EQ(v, i);
    EXPECT_FALSE(s.read_nb(v));
  }
  EXPECT_EQ(s.peak_depth(), 1u);
}

TEST(HlsStream, TryAliasesMatchNbSpellings) {
  // try_write/try_read are the OpenCL-pipe spellings of write_nb /
  // read_nb; a caller may mix them freely against one stream.
  hls::stream<int> s(2);
  EXPECT_TRUE(s.try_write(1));
  EXPECT_TRUE(s.write_nb(2));
  EXPECT_FALSE(s.try_write(3));
  EXPECT_FALSE(s.write_nb(3));

  int v = 0;
  EXPECT_TRUE(s.try_read(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(s.read_nb(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(s.try_read(v));
  EXPECT_FALSE(s.read_nb(v));
}

TEST(HlsStream, RejectsZeroDepth) {
  EXPECT_THROW(hls::stream<int>(0), Error);
}

// ------------------------------------------------------------------ Pipe --

TEST(HlsPipe, TryWriteStopsExactlyAtDepthAndTryReadAtEmpty) {
  hls::Pipe<int> p(2);
  EXPECT_TRUE(p.try_write(1));
  EXPECT_TRUE(p.try_write(2));
  EXPECT_TRUE(p.full());
  EXPECT_FALSE(p.try_write(3));
  EXPECT_EQ(p.size(), 2u);

  int v = -1;
  EXPECT_TRUE(p.try_read(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(p.try_read(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(p.try_read(&v));
  EXPECT_EQ(v, 2);  // failed read leaves *out alone
}

TEST(HlsPipe, CloseWithResidueDrainsThenSignalsEndOfStream) {
  hls::Pipe<int> p(4);
  p.write(1);
  p.write(2);
  p.close();
  EXPECT_TRUE(p.closed());
  EXPECT_FALSE(p.drained());  // closed but residue still readable

  int v = 0;
  EXPECT_TRUE(p.read(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(p.read(&v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(p.drained());
  EXPECT_FALSE(p.read(&v));  // end of stream, no block
  EXPECT_FALSE(p.read(&v));  // stays terminal
}

TEST(HlsPipe, TryReadOnEmptyOpenPipeIsNotEndOfStream) {
  // A polling consumer distinguishes "nothing yet" from "over" via
  // drained(), not via the try_read result.
  hls::Pipe<int> p(1);
  int v = 0;
  EXPECT_FALSE(p.try_read(&v));
  EXPECT_FALSE(p.drained());
  p.close();
  EXPECT_FALSE(p.try_read(&v));
  EXPECT_TRUE(p.drained());
}

TEST(HlsPipe, WriteAfterCloseIsAContractViolation) {
  hls::Pipe<int> p(2);
  p.close();
  EXPECT_THROW(p.write(1), Error);
  EXPECT_THROW(p.try_write(1), Error);
}

TEST(HlsPipe, RejectsZeroDepth) { EXPECT_THROW(hls::Pipe<int>(0), Error); }

TEST(HlsPipe, BlockingHandoffAcrossThreadsCountsStalls) {
  // Producer pushes 100 tokens through a depth-1 pipe while the
  // consumer drains it: every value arrives in order, and the stall
  // counters prove both sides actually blocked on the boundary states.
  hls::Pipe<int> p(1);
  std::vector<int> got;
  std::thread consumer([&] {
    int v = 0;
    while (p.read(&v)) got.push_back(v);
  });
  for (int i = 0; i < 100; ++i) p.write(i);
  p.close();
  consumer.join();

  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
  EXPECT_EQ(p.total_writes(), 100u);
  EXPECT_EQ(p.total_reads(), 100u);
  EXPECT_EQ(p.peak_depth(), 1u);
  EXPECT_TRUE(p.drained());
}

TEST(HlsPipe, WriteStallCounterIncrementsOnFullPipe) {
  hls::Pipe<int> p(1);
  p.write(1);  // fills the pipe without blocking
  EXPECT_EQ(p.write_stalls(), 0u);
  std::thread unblocker([&] {
    // Wait until the producer below is visibly stalled on the full
    // pipe, then free the slot.
    while (p.write_stalls() == 0) std::this_thread::yield();
    int v = 0;
    EXPECT_TRUE(p.read(&v));
    EXPECT_EQ(v, 1);
  });
  p.write(2);  // must block: depth 1, occupied
  unblocker.join();
  EXPECT_EQ(p.write_stalls(), 1u);
  EXPECT_EQ(p.size(), 1u);
}

TEST(HlsPipe, ReadStallCounterIncrementsOnEmptyPipe) {
  hls::Pipe<int> p(1);
  EXPECT_EQ(p.read_stalls(), 0u);
  std::thread producer([&] {
    while (p.read_stalls() == 0) std::this_thread::yield();
    p.write(42);
  });
  int v = 0;
  EXPECT_TRUE(p.read(&v));  // must block: pipe starts empty
  producer.join();
  EXPECT_EQ(v, 42);
  EXPECT_EQ(p.read_stalls(), 1u);
}

}  // namespace
}  // namespace dwi
