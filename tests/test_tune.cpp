// Tests for the resource-aware autotuner (src/tune): search
// determinism, resource-model pruning, TunedConfig round-trips, the
// capacity planner's device sensitivity, and the capacity-derived
// admission bounds' floors and fallbacks.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/error.h"
#include "fpga/device.h"
#include "fpga/resource_model.h"
#include "minicl/shard_backend.h"
#include "rng/configs.h"
#include "serve/capacity.h"
#include "simt/platform.h"
#include "tune/autotuner.h"
#include "tune/capacity_planner.h"
#include "tune/tuned_config.h"

namespace dwi::tune {
namespace {

TunerOptions fast_options(std::uint64_t seed = 1) {
  TunerOptions opt;
  opt.seed = seed;
  opt.budget = 24;
  opt.passes = 2;
  opt.sim_scale_divisor = 16384;  // cheap probes; tests care about the
                                  // search contract, not the numbers
  return opt;
}

// ---- search determinism ----------------------------------------------

TEST(Autotuner, SameSeedSameTable3Config) {
  const auto& dev = fpga::adm_pcie_7v3();
  const auto& app = rng::config(rng::ConfigId::kConfig3);
  const TuneResult a = tune_table3(dev, app, fast_options(7));
  const TuneResult b = tune_table3(dev, app, fast_options(7));
  EXPECT_EQ(format_tuned_config(a.best), format_tuned_config(b.best));
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_EQ(a.trajectory[i].point, b.trajectory[i].point) << i;
    EXPECT_DOUBLE_EQ(a.trajectory[i].objective, b.trajectory[i].objective)
        << i;
  }
}

TEST(Autotuner, SameSeedSameServeConfig) {
  ServeWorkloadSpec spec;
  spec.resident = true;
  const TuneResult a = tune_serve(spec, fast_options(3));
  const TuneResult b = tune_serve(spec, fast_options(3));
  EXPECT_EQ(format_tuned_config(a.best), format_tuned_config(b.best));
}

TEST(Autotuner, BudgetCapsEvaluations) {
  TunerOptions opt = fast_options();
  opt.budget = 6;
  const auto& dev = fpga::adm_pcie_7v3();
  const TuneResult r =
      tune_table3(dev, rng::config(rng::ConfigId::kConfig1), opt);
  EXPECT_LE(r.evaluations, opt.budget);
  EXPECT_TRUE(r.best.feasible);
  EXPECT_GE(r.best.modeled_throughput, r.fallback.modeled_throughput);
}

// ---- resource-model pruning ------------------------------------------

TEST(Autotuner, Table3PrunesInfeasiblePointsWithoutSpendingBudget) {
  // The table3 knob set deliberately includes work-item counts past
  // N_max and very deep FIFOs — the Table II model must reject them.
  const auto& dev = fpga::adm_pcie_7v3();
  const TuneResult r =
      tune_table3(dev, rng::config(rng::ConfigId::kConfig1), fast_options());
  EXPECT_GT(r.pruned_infeasible, 0u);
  EXPECT_TRUE(r.best.feasible);
  EXPECT_LE(r.evaluations, fast_options().budget);
  // Pruned trajectory points carry feasible=false and a zero objective.
  bool saw_pruned = false;
  for (const TrajectoryPoint& p : r.trajectory) {
    if (!p.feasible) {
      saw_pruned = true;
      EXPECT_EQ(p.objective, 0.0);
      EXPECT_FALSE(p.improved);
    }
  }
  EXPECT_TRUE(saw_pruned);
  // The winner itself must price within the device budget.
  fpga::DesignPoint point;
  point.work_items = r.best.work_items;
  point.stream_depth = r.best.stream_depth;
  point.burst_beats = r.best.burst_beats;
  EXPECT_TRUE(fpga::estimate_utilization(
                  dev, rng::config(rng::ConfigId::kConfig1), point)
                  .routable);
}

TEST(ResourceModel, DesignPointAtDefaultsMatchesTableIIPath) {
  // The tunable DesignPoint overload must be a strict generalization:
  // at the calibrated depth/burst it reproduces the legacy Table II
  // numbers bit-for-bit for every configuration at N_max.
  const auto& dev = fpga::adm_pcie_7v3();
  for (const rng::AppConfig& app : rng::all_configs()) {
    const unsigned nmax = fpga::max_work_items(dev, app);
    const auto legacy = fpga::estimate_utilization(dev, app, nmax);
    fpga::DesignPoint point;
    point.work_items = nmax;
    point.stream_depth = 64;
    point.burst_beats = app.uses_marsaglia_bray ? 16u : 18u;
    const auto tuned = fpga::estimate_utilization(dev, app, point);
    EXPECT_EQ(tuned.total.luts, legacy.total.luts) << app.name;
    EXPECT_EQ(tuned.total.ffs, legacy.total.ffs) << app.name;
    EXPECT_EQ(tuned.total.dsps, legacy.total.dsps) << app.name;
    EXPECT_EQ(tuned.total.bram36, legacy.total.bram36) << app.name;
    EXPECT_DOUBLE_EQ(tuned.slice_util, legacy.slice_util) << app.name;
    EXPECT_EQ(tuned.routable, legacy.routable) << app.name;
  }
}

TEST(ResourceModel, DepthAndBurstExtrasAreZeroAtDefaultsOnly) {
  const auto zero = [](const fpga::BlockResources& r) {
    return r.luts == 0 && r.ffs == 0 && r.dsps == 0 && r.bram36 == 0;
  };
  EXPECT_TRUE(zero(fpga::stream_fifo_extra(32)));
  EXPECT_TRUE(zero(fpga::stream_fifo_extra(64)));
  EXPECT_FALSE(zero(fpga::stream_fifo_extra(1024)));
  EXPECT_TRUE(zero(fpga::transfer_unit_extra(18)));
  EXPECT_FALSE(zero(fpga::transfer_unit_extra(128)));
  // Monotone: more storage never costs less.
  EXPECT_GE(fpga::stream_fifo_extra(2048).bram36,
            fpga::stream_fifo_extra(1024).bram36);
  EXPECT_GE(fpga::transfer_unit_extra(256).bram36,
            fpga::transfer_unit_extra(128).bram36);
}

// ---- fig5 ------------------------------------------------------------

TEST(Autotuner, Fig5RespectsNdRangeRuleAndNeverLoses) {
  for (const simt::PlatformId plat :
       {simt::PlatformId::kCpu, simt::PlatformId::kGpu,
        simt::PlatformId::kPhi}) {
    const TuneResult r = tune_fig5(
        plat, rng::config(rng::ConfigId::kConfig1), fast_options());
    EXPECT_TRUE(r.best.feasible);
    ASSERT_GT(r.best.local_size, 0u);
    EXPECT_EQ(r.best.global_size % r.best.local_size, 0u)
        << simt::to_string(plat);
    // The default local size is the paper's Fig 5a optimum; coordinate
    // descent only adopts strict improvements, so tuned >= default.
    EXPECT_GE(r.speedup(), 1.0) << simt::to_string(plat);
  }
}

// ---- serve tuner -----------------------------------------------------

TEST(Autotuner, ServeStrategyLockKeepsJumpAhead) {
  // Opting out of the strategy switch (responses must keep jump-ahead
  // bytes) restricts the search to value-preserving knobs.
  ServeWorkloadSpec spec;
  spec.allow_strategy_switch = false;
  const TuneResult r = tune_serve(spec, fast_options());
  EXPECT_EQ(r.best.stream_strategy, "jump-ahead");
  EXPECT_TRUE(r.best.feasible);
}

TEST(Autotuner, ServeModelPrefersCounterDerivation) {
  ServeWorkloadSpec spec;
  const double jump = modeled_serve_rps(spec, false, 16, 256, 1, 8);
  const double counter = modeled_serve_rps(spec, true, 16, 256, 1, 8);
  EXPECT_GT(jump, 0.0);
  EXPECT_GT(counter, jump);
}

// ---- TunedConfig wire format -----------------------------------------

TEST(TunedConfigFormat, RoundTripsEveryField) {
  TunedConfig cfg;
  cfg.workload = "table3:Config3";
  cfg.device = "adm-pcie-7v3";
  cfg.seed = 42;
  cfg.work_items = 8;
  cfg.stream_depth = 128;
  cfg.burst_beats = 64;
  cfg.cycle_skipping = false;
  cfg.batch_iterations = 8192;
  cfg.global_size = 1u << 20;
  cfg.local_size = 256;
  cfg.threads = 4;
  cfg.max_batch = 64;
  cfg.queue_capacity = 1024;
  cfg.pipe_depth = 32;
  cfg.stream_strategy = "counter-based";
  cfg.modeled_throughput = 1478712039.25;
  cfg.feasible = true;
  const std::string text = format_tuned_config(cfg);
  const TunedConfig back = parse_tuned_config(text);
  EXPECT_EQ(format_tuned_config(back), text);
  EXPECT_EQ(back.workload, cfg.workload);
  EXPECT_EQ(back.stream_depth, cfg.stream_depth);
  EXPECT_EQ(back.cycle_skipping, cfg.cycle_skipping);
  EXPECT_EQ(back.stream_strategy, cfg.stream_strategy);
  EXPECT_DOUBLE_EQ(back.modeled_throughput, cfg.modeled_throughput);
}

TEST(TunedConfigFormat, RejectsMalformedInput) {
  const std::string good = format_tuned_config(TunedConfig{});
  EXPECT_THROW((void)parse_tuned_config("nonsense v9\n"), dwi::Error);
  EXPECT_THROW((void)parse_tuned_config(good + "mystery_knob=3\n"),
               dwi::Error);
  EXPECT_THROW((void)parse_tuned_config(good + "work_items=eight\n"),
               dwi::Error);
  EXPECT_THROW(
      (void)parse_tuned_config("dwi-tuned-config v1\nno_equals_sign\n"),
      dwi::Error);
}

// ---- capacity planner ------------------------------------------------

TEST(CapacityPlanner, RatesDifferByDeviceKind) {
  const WorkloadMix mix;
  const auto fpga_backend =
      minicl::make_shard_backend(minicl::BackendKind::kFpga, 0);
  const auto cpu_backend =
      minicl::make_shard_backend(minicl::BackendKind::kCpu, 0);
  const auto fpga_plan = plan_capacity(*fpga_backend, mix);
  const auto cpu_plan = plan_capacity(*cpu_backend, mix);
  EXPECT_TRUE(fpga_plan.enabled());
  EXPECT_TRUE(cpu_plan.enabled());
  // The modeled FPGA serves the mix far faster than the modeled CPU,
  // so its derived admission bounds are wider.
  EXPECT_GT(fpga_plan.modeled_rps, cpu_plan.modeled_rps);
  EXPECT_GT(serve::derived_queue_capacity(fpga_plan, 256),
            serve::derived_queue_capacity(cpu_plan, 256));
}

TEST(CapacityPlanner, HeavierMixLowersTheRate) {
  const auto backend =
      minicl::make_shard_backend(minicl::BackendKind::kFpga, 0);
  WorkloadMix light;
  WorkloadMix heavy = light;
  heavy.gamma_outputs = light.gamma_outputs * 64;
  heavy.credit_outputs = light.credit_outputs * 64;
  EXPECT_GT(plan_capacity(*backend, light).modeled_rps,
            plan_capacity(*backend, heavy).modeled_rps);
}

TEST(CapacityPlanner, ClusterPlansFollowTheDeviceCycle) {
  serve::ClusterConfig cfg;
  cfg.num_shards = 4;
  cfg.devices = {minicl::BackendKind::kFpga, minicl::BackendKind::kCpu};
  const auto plans = plan_cluster_capacity(cfg, WorkloadMix{});
  ASSERT_EQ(plans.size(), 4u);
  // Shards 0/2 are FPGA, 1/3 CPU — same kind, same modeled rate.
  EXPECT_DOUBLE_EQ(plans[0].modeled_rps, plans[2].modeled_rps);
  EXPECT_DOUBLE_EQ(plans[1].modeled_rps, plans[3].modeled_rps);
  EXPECT_GT(plans[0].modeled_rps, plans[1].modeled_rps);
}

// ---- capacity-derived bounds (serve/capacity.h) ----------------------

TEST(CapacityBounds, DisabledPlanKeepsTheFallback) {
  const serve::CapacityPlan off;  // modeled_rps == 0
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(serve::derived_queue_capacity(off, 256), 256u);
  EXPECT_EQ(serve::derived_max_batch(off, 16, 256), 16u);
}

TEST(CapacityBounds, NeverBelowOneEvenForGlacialDevices) {
  serve::CapacityPlan slow;
  slow.modeled_rps = 1e-9;
  const std::size_t queue = serve::derived_queue_capacity(slow, 256);
  EXPECT_GE(queue, 1u);
  EXPECT_GE(serve::derived_max_batch(slow, 16, queue), 1u);
  EXPECT_LE(serve::derived_max_batch(slow, 16, queue), queue);
}

TEST(CapacityBounds, FastDevicesAreClampedToTheHardCeiling) {
  serve::CapacityPlan fast;
  fast.modeled_rps = 1e12;
  EXPECT_EQ(serve::derived_queue_capacity(fast, 256),
            serve::kMaxDerivedQueue);
}

}  // namespace
}  // namespace dwi::tune
