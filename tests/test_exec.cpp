// Determinism tests for the parallel execution engine (src/exec):
//   * parallel_for / parallel_map / parallel_reduce cover every index
//     exactly once, keep results in index order, and propagate
//     exceptions;
//   * the prerun+replay KernelSim engine is bit-identical to the
//     serial reference for 1 / 2 / 8 threads;
//   * SubstreamSplitter serves order-independent jump-ahead substreams
//     that tile the master sequence;
//   * the SIMT runtime estimate and GammaWorkItem streams do not
//     depend on the thread count;
//   * SpscRingBuffer passes every element exactly once across threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/spsc_ring_buffer.h"
#include "core/gamma_work_item.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "fpga/kernel_sim.h"
#include "rng/configs.h"
#include "rng/jump.h"
#include "simt/runtime_estimator.h"

namespace dwi {
namespace {

/// Restores the default thread count when a test returns early.
struct ThreadCountGuard {
  ~ThreadCountGuard() { exec::set_thread_count(0); }
};

// ---------------------------------------------------------------------
// parallel_for / parallel_map / parallel_reduce
// ---------------------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (const unsigned threads : {1u, 2u, 8u}) {
    exec::set_thread_count(threads);
    std::vector<std::atomic<int>> hits(1000);
    exec::parallel_for(hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, ZeroAndOneIndexWork) {
  exec::parallel_for(0, [](std::size_t) { FAIL(); });
  int calls = 0;
  exec::parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesExceptionsAndDoesNotHang) {
  ThreadCountGuard guard;
  exec::set_thread_count(4);
  EXPECT_THROW(exec::parallel_for(100,
                                  [](std::size_t i) {
                                    if (i == 37) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
               std::runtime_error);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  // The caller participates in its own loop, so a body that itself
  // calls parallel_for cannot starve: even with every pool worker
  // blocked in outer bodies, each blocked caller keeps claiming its
  // inner indices.
  ThreadCountGuard guard;
  exec::set_thread_count(2);
  std::atomic<int> total{0};
  exec::parallel_for(8, [&](std::size_t) {
    exec::parallel_for(8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelMap, ResultsAreInIndexOrderForAnyThreadCount) {
  ThreadCountGuard guard;
  for (const unsigned threads : {1u, 3u, 8u}) {
    exec::set_thread_count(threads);
    const auto squares =
        exec::parallel_map(257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 257u);
    for (std::size_t i = 0; i < squares.size(); ++i) {
      ASSERT_EQ(squares[i], i * i);
    }
  }
}

TEST(ParallelReduce, FoldsInIndexOrder) {
  // Floating-point reduction: the fold happens on the caller in index
  // order, so the sum is bitwise identical to the serial loop no
  // matter how many threads computed the terms.
  ThreadCountGuard guard;
  const auto term = [](std::size_t i) {
    return 1.0 / static_cast<double>(i + 1);
  };
  double serial = 0.0;
  for (std::size_t i = 0; i < 5000; ++i) serial += term(i);
  for (const unsigned threads : {1u, 2u, 8u}) {
    exec::set_thread_count(threads);
    const double parallel = exec::parallel_reduce(
        5000, 0.0, term, [](double a, double b) { return a + b; });
    ASSERT_EQ(serial, parallel) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------

TEST(ExecConfig, ParseThreadsAcceptsPlainPositiveCounts) {
  EXPECT_EQ(exec::ExecConfig::parse_threads("1"), 1u);
  EXPECT_EQ(exec::ExecConfig::parse_threads("8"), 8u);
  EXPECT_EQ(exec::ExecConfig::parse_threads("007"), 7u);
  EXPECT_EQ(exec::ExecConfig::parse_threads("4096"),
            exec::ExecConfig::kMaxThreads);
}

TEST(ExecConfig, ParseThreadsRejectsMisconfigurations) {
  // A silently ignored bad DWI_THREADS used to misconfigure the pool;
  // each of these must now fail loudly instead.
  EXPECT_THROW(exec::ExecConfig::parse_threads(""), Error);
  EXPECT_THROW(exec::ExecConfig::parse_threads("0"), Error);
  EXPECT_THROW(exec::ExecConfig::parse_threads("000"), Error);
  EXPECT_THROW(exec::ExecConfig::parse_threads("-2"), Error);
  EXPECT_THROW(exec::ExecConfig::parse_threads("+4"), Error);
  EXPECT_THROW(exec::ExecConfig::parse_threads(" 8"), Error);
  EXPECT_THROW(exec::ExecConfig::parse_threads("8 "), Error);
  EXPECT_THROW(exec::ExecConfig::parse_threads("4x"), Error);
  EXPECT_THROW(exec::ExecConfig::parse_threads("not-a-number"), Error);
  EXPECT_THROW(exec::ExecConfig::parse_threads("0x10"), Error);
  EXPECT_THROW(exec::ExecConfig::parse_threads("4097"), Error);
  EXPECT_THROW(exec::ExecConfig::parse_threads("99999999999"), Error);
}

TEST(ExecConfig, EnvParsingAndOverride) {
  ThreadCountGuard guard;
  ::setenv("DWI_THREADS", "3", 1);
  EXPECT_EQ(exec::ExecConfig::from_env().resolved(), 3u);
  ::setenv("DWI_THREADS", "not-a-number", 1);
  EXPECT_THROW(exec::ExecConfig::from_env(), Error);
  ::setenv("DWI_THREADS", "0", 1);
  EXPECT_THROW(exec::ExecConfig::from_env(), Error);
  ::unsetenv("DWI_THREADS");
  EXPECT_GE(exec::ExecConfig::from_env().resolved(), 1u);

  exec::set_thread_count(5);
  EXPECT_EQ(exec::thread_count(), 5u);
  exec::set_thread_count(0);
  EXPECT_GE(exec::thread_count(), 1u);
}

// ---------------------------------------------------------------------
// KernelSim: parallel engine == serial engine, bit for bit
// ---------------------------------------------------------------------

fpga::KernelSimConfig small_sim_config(fpga::SimEngine engine) {
  fpga::KernelSimConfig cfg;
  cfg.work_items = 4;
  cfg.outputs_per_work_item = 3000;
  cfg.stream_depth = 16;
  cfg.burst_beats = 8;
  cfg.record_outputs = true;
  cfg.engine = engine;
  return cfg;
}

void expect_identical(const fpga::KernelSimResult& a,
                      const fpga::KernelSimResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.compute_stall_cycles, b.compute_stall_cycles);
  EXPECT_EQ(a.bursts, b.bursts);
  EXPECT_EQ(a.channel_bytes_per_cycle, b.channel_bytes_per_cycle);
  ASSERT_EQ(a.outputs_data.size(), b.outputs_data.size());
  for (std::size_t i = 0; i < a.outputs_data.size(); ++i) {
    ASSERT_EQ(a.outputs_data[i], b.outputs_data[i]) << "output " << i;
  }
}

fpga::ProducerFactory bernoulli_factory() {
  return [](unsigned wid) {
    return std::make_unique<fpga::BernoulliProducer>(0.7, 1000u + wid);
  };
}

fpga::ProducerFactory gamma_factory() {
  return [](unsigned wid) {
    core::GammaWorkItemConfig wc;
    wc.app = rng::config(rng::ConfigId::kConfig1);
    wc.sector_variances = {1.39f, 0.25f};
    wc.outputs_per_sector = 1500;
    wc.work_item_id = wid;
    wc.seed = 7u;
    return std::make_unique<core::GammaWorkItem>(wc);
  };
}

TEST(KernelSimEngines, ParallelMatchesSerialBernoulli) {
  ThreadCountGuard guard;
  const auto serial =
      fpga::simulate_kernel(small_sim_config(fpga::SimEngine::kSerial),
                            bernoulli_factory());
  for (const unsigned threads : {1u, 2u, 8u}) {
    exec::set_thread_count(threads);
    const auto parallel =
        fpga::simulate_kernel(small_sim_config(fpga::SimEngine::kParallel),
                              bernoulli_factory());
    SCOPED_TRACE(threads);
    expect_identical(serial, parallel);
  }
}

TEST(KernelSimEngines, ParallelMatchesSerialGammaNumerics) {
  // The real Listing 2 producer: rejection sampling with enable-gated
  // twisters. quota = outputs_per_sector x sectors.
  ThreadCountGuard guard;
  auto cfg = small_sim_config(fpga::SimEngine::kSerial);
  cfg.outputs_per_work_item = 3000;
  const auto serial = fpga::simulate_kernel(cfg, gamma_factory());
  EXPECT_EQ(serial.outputs, 4u * 3000u);
  for (const unsigned threads : {2u, 8u}) {
    exec::set_thread_count(threads);
    cfg.engine = fpga::SimEngine::kParallel;
    const auto parallel = fpga::simulate_kernel(cfg, gamma_factory());
    SCOPED_TRACE(threads);
    expect_identical(serial, parallel);
  }
}

TEST(KernelSimEngines, ParallelMatchesSerialTrace) {
  // The per-cycle Fig 3 trace is the most schedule-sensitive artifact;
  // replay must reproduce it character for character.
  ThreadCountGuard guard;
  exec::set_thread_count(4);
  auto cfg = small_sim_config(fpga::SimEngine::kSerial);
  cfg.outputs_per_work_item = 200;
  fpga::ScheduleTrace serial_trace;
  cfg.trace = &serial_trace;
  (void)fpga::simulate_kernel(cfg, bernoulli_factory());

  fpga::ScheduleTrace parallel_trace;
  cfg.engine = fpga::SimEngine::kParallel;
  cfg.trace = &parallel_trace;
  (void)fpga::simulate_kernel(cfg, bernoulli_factory());

  ASSERT_EQ(serial_trace.work_items.size(), parallel_trace.work_items.size());
  for (std::size_t w = 0; w < serial_trace.work_items.size(); ++w) {
    EXPECT_EQ(serial_trace.work_items[w], parallel_trace.work_items[w]);
  }
  EXPECT_EQ(serial_trace.channel, parallel_trace.channel);
}

// ---------------------------------------------------------------------
// RNG substreams
// ---------------------------------------------------------------------

TEST(SubstreamSplitter, TilesTheMasterSequence) {
  const auto p = rng::mt521_params();
  constexpr std::uint64_t kStride = 2000;
  const rng::SubstreamSplitter splitter(p, 11u, kStride);
  rng::MersenneTwister master(p, 11u);
  for (std::uint64_t s = 0; s < 4; ++s) {
    rng::MersenneTwister stream = splitter.stream(s);
    for (std::uint64_t i = 0; i < kStride; ++i) {
      ASSERT_EQ(stream.next(), master.next())
          << "substream " << s << " output " << i;
    }
  }
}

TEST(SubstreamSplitter, AccessOrderDoesNotMatter) {
  // Parallel shards claim indices dynamically; stream(i) must depend
  // only on i. Query out of order and compare with in-order access.
  const auto p = rng::mt521_params();
  const rng::SubstreamSplitter splitter(p, 3u, 777);
  rng::MersenneTwister late_first = splitter.stream(5);
  rng::MersenneTwister early = splitter.stream(1);
  rng::MersenneTwister late_again = splitter.stream(5);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(late_first.next(), late_again.next());
  }
  // And it equals the eager partitioning helper.
  auto eager = rng::make_parallel_streams(p, 3u, 2, 777);
  for (int i = 0; i < 500; ++i) ASSERT_EQ(early.next(), eager[1].next());
}

TEST(GammaWorkItem, JumpAheadStrategyIsDeterministic) {
  // Jump-ahead needs a small DCMT geometry — Config2/4 (MT521), not
  // Config1/3 (MT19937).
  const auto run = [] {
    core::GammaWorkItemConfig wc;
    wc.app = rng::config(rng::ConfigId::kConfig2);
    wc.outputs_per_sector = 200;
    wc.stream_strategy = core::StreamStrategy::kJumpAhead;
    wc.work_item_id = 2;
    wc.seed = 5u;
    core::GammaWorkItem wi(wc);
    std::vector<float> out;
    float v = 0.0f;
    while (!wi.finished()) {
      if (wi.produce(&v)) out.push_back(v);
    }
    return out;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), 200u);
  ASSERT_EQ(a, b);
}

TEST(GammaWorkItem, JumpAheadWorkItemsDrawDisjointSubstreams) {
  // Work-items 0 and 1 use substream indices 0..3 and 4..7 of one
  // master sequence — their outputs must differ.
  const auto run = [](unsigned wid) {
    core::GammaWorkItemConfig wc;
    wc.app = rng::config(rng::ConfigId::kConfig2);
    wc.outputs_per_sector = 100;
    wc.stream_strategy = core::StreamStrategy::kJumpAhead;
    wc.work_item_id = wid;
    wc.seed = 5u;
    core::GammaWorkItem wi(wc);
    std::vector<float> out;
    float v = 0.0f;
    while (!wi.finished()) {
      if (wi.produce(&v)) out.push_back(v);
    }
    return out;
  };
  EXPECT_NE(run(0), run(1));
}

TEST(GammaWorkItem, JumpAheadRejectsHugeGeometries) {
  // MT19937's dense GF(2) matrix is out of range for rng/jump; the
  // strategy must fail loudly rather than silently fall back.
  core::GammaWorkItemConfig wc;
  wc.app = rng::config(rng::ConfigId::kConfig1);  // MT19937
  wc.stream_strategy = core::StreamStrategy::kJumpAhead;
  EXPECT_THROW(core::GammaWorkItem{wc}, Error);
}

// ---------------------------------------------------------------------
// SIMT estimator thread-invariance
// ---------------------------------------------------------------------

TEST(RuntimeEstimator, ResultIsThreadCountInvariant) {
  ThreadCountGuard guard;
  const auto& cfg = rng::config(rng::ConfigId::kConfig1);
  simt::NdRangeWorkload w;
  exec::set_thread_count(1);
  const auto serial = simt::estimate_runtime(
      simt::platform(simt::PlatformId::kGpu), cfg,
      cfg.fixed_arch_transform, w);
  for (const unsigned threads : {2u, 8u}) {
    exec::set_thread_count(threads);
    const auto parallel = simt::estimate_runtime(
        simt::platform(simt::PlatformId::kGpu), cfg,
        cfg.fixed_arch_transform, w);
    EXPECT_EQ(serial.seconds, parallel.seconds);
    EXPECT_EQ(serial.slots_total, parallel.slots_total);
    EXPECT_EQ(serial.simd_efficiency, parallel.simd_efficiency);
    EXPECT_EQ(serial.rejection_rate, parallel.rejection_rate);
    EXPECT_EQ(serial.slots_per_output, parallel.slots_per_output);
  }
}

// ---------------------------------------------------------------------
// SpscRingBuffer
// ---------------------------------------------------------------------

TEST(SpscRingBuffer, SingleThreadedFullEmpty) {
  SpscRingBuffer<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4));  // full
  int v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.try_push(4));  // slot freed
  for (const int expect : {2, 3, 4}) {
    ASSERT_TRUE(q.try_pop(v));
    ASSERT_EQ(v, expect);
  }
  EXPECT_FALSE(q.try_pop(v));  // empty
}

TEST(SpscRingBuffer, PassesEveryElementInOrderAcrossThreads) {
  constexpr int kCount = 200'000;
  SpscRingBuffer<int> q(64);
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      while (!q.try_push(i)) std::this_thread::yield();
    }
  });
  long long sum = 0;
  int expected = 0;
  while (expected < kCount) {
    int v = 0;
    if (q.try_pop(v)) {
      ASSERT_EQ(v, expected);  // strict FIFO
      sum += v;
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

}  // namespace
}  // namespace dwi
