// Golden-value regression tests: exact outputs of the numerics for
// pinned seeds/inputs. Statistical tests cannot see a one-in-a-million
// perturbation (a changed rounding, a reordered operation); these
// pins can. Update the constants deliberately when the algorithm
// changes, never to silence a failure.
#include <gtest/gtest.h>

#include "core/gamma_work_item.h"
#include "rng/erfinv.h"
#include "rng/icdf_bitwise.h"
#include "rng/mersenne_twister.h"

namespace dwi {
namespace {

TEST(Golden, Mt19937CanonicalOutputs) {
  // Matsumoto's reference values for seed 5489.
  rng::MersenneTwister mt(rng::mt19937_params(), 5489u);
  EXPECT_EQ(mt.next(), 3499211612u);
  EXPECT_EQ(mt.next(), 581869302u);
  EXPECT_EQ(mt.next(), 3890346734u);
}

TEST(Golden, Mt521FirstOutputs) {
  // The proven full-period parameter set, seed 1 (library pin).
  rng::MersenneTwister mt(rng::mt521_params(), 1u);
  const std::uint32_t expected[5] = {0xf5757962u, 0x57b0bbafu, 0x12e40c22u,
                                     0xc87be7c0u, 0x378efa23u};
  for (std::uint32_t e : expected) EXPECT_EQ(mt.next(), e);
}

TEST(Golden, IcdfBitwiseValues) {
  EXPECT_FLOAT_EQ(rng::normal_icdf_bitwise(0x40000000u).value,
                  -0.674481392f);
  EXPECT_FLOAT_EQ(rng::normal_icdf_bitwise(0x80000000u).value,
                  2.48849392e-06f);
  EXPECT_FLOAT_EQ(rng::normal_icdf_bitwise(0xc0000000u).value,
                  0.674490988f);
  EXPECT_FLOAT_EQ(rng::normal_icdf_bitwise(0x00010000u).value,
                  -4.16956377f);
}

TEST(Golden, ErfinvGilesValues) {
  EXPECT_FLOAT_EQ(rng::erfinv_giles(0.5f), 0.476936281f);
  EXPECT_FLOAT_EQ(rng::erfinv_giles(-0.9f), -1.16308701f);
  EXPECT_FLOAT_EQ(rng::erfinv_giles(0.99f), 1.82138658f);
}

TEST(Golden, GammaWorkItemFirstOutputs) {
  // Listing 2 end to end (Config2, seed 7, work-item 0): any change to
  // the twister gating, transform, rejection test or correction moves
  // these values.
  core::GammaWorkItemConfig cfg;
  cfg.app = rng::config(rng::ConfigId::kConfig2);
  cfg.outputs_per_sector = 8;
  cfg.seed = 7;
  core::GammaWorkItem wi(cfg);
  const float expected[4] = {0.858593583f, 2.32772803f, 0.97027576f,
                             0.296070963f};
  float v = 0.0f;
  for (float e : expected) {
    while (!wi.produce(&v)) {
      ASSERT_FALSE(wi.finished());
    }
    EXPECT_FLOAT_EQ(v, e);
  }
}

}  // namespace
}  // namespace dwi
