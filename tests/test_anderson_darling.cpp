// Tests for the Anderson-Darling test: acceptance of matching samples,
// rejection of mismatches (including a tail-only defect KS struggles
// with), p-value calibration, and application to the library's gamma
// generators.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <span>
#include <vector>

#include "common/error.h"
#include "rng/gamma.h"
#include "rng/mersenne_twister.h"
#include "stats/anderson_darling.h"
#include "stats/distributions.h"
#include "stats/ks_test.h"

namespace dwi::stats {
namespace {

TEST(AndersonDarling, AcceptsUniform) {
  std::mt19937_64 eng(3);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = u(eng);
  const auto r = anderson_darling_test(
      std::span<const double>(xs),
      [](double x) { return std::clamp(x, 0.0, 1.0); });
  EXPECT_GT(r.p_value, 0.01) << "A2=" << r.a2;
}

TEST(AndersonDarling, AcceptsNormal) {
  std::mt19937_64 eng(5);
  std::normal_distribution<double> nd(0.0, 1.0);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = nd(eng);
  const auto r = anderson_darling_test(std::span<const double>(xs),
                                       [](double x) { return normal_cdf(x); });
  EXPECT_GT(r.p_value, 0.01);
}

TEST(AndersonDarling, RejectsShiftedNormal) {
  std::mt19937_64 eng(7);
  std::normal_distribution<double> nd(0.15, 1.0);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = nd(eng);
  const auto r = anderson_darling_test(std::span<const double>(xs),
                                       [](double x) { return normal_cdf(x); });
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(AndersonDarling, PValueRoughlyUniformUnderNull) {
  // Repeated small-sample tests on true-null data: p-values should not
  // concentrate near 0 (calibration sanity).
  std::mt19937_64 eng(11);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  int below_05 = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> xs(500);
    for (auto& x : xs) x = u(eng);
    const auto r = anderson_darling_test(
        std::span<const double>(xs),
        [](double x) { return std::clamp(x, 0.0, 1.0); });
    if (r.p_value < 0.05) ++below_05;
  }
  // Expected ~10 of 200; allow generous slack for approximation error.
  EXPECT_LT(below_05, 30);
  EXPECT_GT(below_05, 0);
}

TEST(AndersonDarling, CatchesTailDefectThatKsMisses) {
  // 1% contamination with N(0,4) — a heavy-tail defect that barely
  // moves the central CDF. KS accepts it comfortably; A-D's
  // 1/(F(1−F)) tail weighting rejects it decisively. This is exactly
  // the failure mode a subtly wrong gamma correction would produce.
  std::mt19937_64 eng(13);
  std::normal_distribution<double> nd(0.0, 1.0);
  std::normal_distribution<double> wide(0.0, 4.0);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = u(eng) < 0.01 ? wide(eng) : nd(eng);
  const auto ad = anderson_darling_test(
      std::span<const double>(xs), [](double x) { return normal_cdf(x); });
  const auto ks = ks_test(std::span<const double>(xs),
                          [](double x) { return normal_cdf(x); });
  EXPECT_LT(ad.p_value, 1e-3);
  EXPECT_GT(ks.p_value, 0.05);  // KS misses it
}

TEST(AndersonDarling, LibraryGammaPassesIncludingTails) {
  auto k = rng::GammaConstants::from_sector_variance(1.39f);
  rng::GammaSampler sampler(k, rng::NormalTransform::kMarsagliaBray);
  rng::MersenneTwister mt(rng::mt19937_params(), 21u);
  auto src = [&] { return mt.next(); };
  std::vector<double> xs(60000);
  for (auto& x : xs) x = static_cast<double>(sampler.sample(src));
  const auto g = GammaParams::from_sector_variance(1.39);
  const auto r = anderson_darling_test(
      std::span<const double>(xs),
      [&](double x) { return gamma_cdf(x, g.shape, g.scale); });
  EXPECT_GT(r.p_value, 1e-3) << "A2*=" << r.a2_star;
}

TEST(AndersonDarling, RejectsTinySamples) {
  std::vector<double> xs(3, 0.5);
  EXPECT_THROW(anderson_darling_test(std::span<const double>(xs),
                                     [](double x) { return x; }),
               Error);
}

}  // namespace
}  // namespace dwi::stats
