// Property-based differential tests for the HLS construct library:
// ap_uint against a 128-bit reference, ap_fixed against exact double
// arithmetic, stream/dataflow stress under randomized schedules.
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "common/bits.h"
#include "hls/ap_fixed.h"
#include "hls/ap_uint.h"
#include "hls/dataflow.h"
#include "hls/stream.h"

namespace dwi::hls {
namespace {

__extension__ using uint128 = unsigned __int128;

uint128 to_u128(const ap_uint<128>& x) {
  return (static_cast<uint128>(x.limb(1)) << 64) | x.limb(0);
}

ap_uint<128> from_u128(uint128 v) {
  ap_uint<128> r(static_cast<std::uint64_t>(v));
  r.set_range(127, 64, static_cast<std::uint64_t>(v >> 64));
  return r;
}

class ApUint128Differential : public ::testing::TestWithParam<unsigned> {};

TEST_P(ApUint128Differential, ArithmeticMatches128BitReference) {
  std::mt19937_64 eng(GetParam());
  for (int it = 0; it < 2000; ++it) {
    const uint128 a = (static_cast<uint128>(eng()) << 64) | eng();
    const uint128 b = (static_cast<uint128>(eng()) << 64) | eng();
    const auto xa = from_u128(a);
    const auto xb = from_u128(b);
    ASSERT_EQ(to_u128(xa + xb), static_cast<uint128>(a + b));
    ASSERT_EQ(to_u128(xa - xb), static_cast<uint128>(a - b));
    ASSERT_EQ(to_u128(xa * xb), static_cast<uint128>(a * b));
    ASSERT_EQ(to_u128(xa & xb), a & b);
    ASSERT_EQ(to_u128(xa | xb), a | b);
    ASSERT_EQ(to_u128(xa ^ xb), a ^ b);
    const unsigned s = static_cast<unsigned>(eng() % 128);
    ASSERT_EQ(to_u128(xa << s), static_cast<uint128>(a << s));
    ASSERT_EQ(to_u128(xa >> s), static_cast<uint128>(a >> s));
    ASSERT_EQ(xa < xb, a < b);
    ASSERT_EQ(xa == xb, a == b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApUint128Differential,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(ApUintProperty, RangeWriteReadRoundTripRandom) {
  std::mt19937_64 eng(11);
  ap_uint<512> word;
  for (int it = 0; it < 5000; ++it) {
    const unsigned lo = static_cast<unsigned>(eng() % 480);
    const unsigned width = 1 + static_cast<unsigned>(eng() % 64);
    const unsigned hi = std::min(511u, lo + width - 1);
    const std::uint64_t mask = (hi - lo + 1) == 64
                                   ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << (hi - lo + 1)) - 1);
    const std::uint64_t v = eng() & mask;
    word.set_range(hi, lo, v);
    ASSERT_EQ(word.get_range64(hi, lo), v) << "lo=" << lo << " hi=" << hi;
  }
}

TEST(ApUintProperty, SumOfBitsEqualsValue) {
  // x == Σ bit_i · 2^i for random 200-bit values.
  std::mt19937_64 eng(13);
  for (int it = 0; it < 200; ++it) {
    ap_uint<200> x;
    for (unsigned limb = 0; limb < 4; ++limb) {
      x.set_range(std::min(199u, limb * 64 + 63), limb * 64,
                  eng());
    }
    ap_uint<200> rebuilt;
    for (unsigned i = 0; i < 200; ++i) {
      if (x.bit(i)) rebuilt.set_bit(i, true);
    }
    ASSERT_EQ(x, rebuilt);
  }
}

TEST(ApFixedProperty, AdditionExactWhenInRange) {
  // Fixed-point addition of representable values is exact as long as
  // the sum stays in range.
  using F = ap_fixed<32, 8>;
  std::mt19937_64 eng(17);
  std::uniform_int_distribution<std::int64_t> raw(-(1ll << 29),
                                                  (1ll << 29) - 1);
  for (int it = 0; it < 5000; ++it) {
    const auto a = F::from_raw(raw(eng));
    const auto b = F::from_raw(raw(eng));
    ASSERT_DOUBLE_EQ((a + b).to_double(), a.to_double() + b.to_double());
  }
}

TEST(ApFixedProperty, QuantizationErrorBounded) {
  using F = ap_fixed<32, 8>;
  std::mt19937_64 eng(19);
  std::uniform_real_distribution<double> ud(-127.0, 127.0);
  for (int it = 0; it < 5000; ++it) {
    const double v = ud(eng);
    const double q = F(v).to_double();
    ASSERT_LE(q, v + 1e-12);                 // truncation toward -inf
    ASSERT_GT(q, v - F::epsilon() - 1e-12);  // within one LSB
  }
}

TEST(StreamProperty, RandomizedProducerConsumerPreservesSequence) {
  std::mt19937_64 eng(23);
  for (int round = 0; round < 5; ++round) {
    const std::size_t depth = 1 + eng() % 16;
    stream<int> s(depth);
    constexpr int kN = 20000;
    std::vector<int> got;
    got.reserve(kN);
    std::thread consumer([&] {
      std::mt19937_64 ceng(99);
      for (int i = 0; i < kN; ++i) {
        got.push_back(s.read());
        if ((ceng() & 7u) == 0) std::this_thread::yield();
      }
    });
    std::mt19937_64 peng(7);
    for (int i = 0; i < kN; ++i) {
      s.write(i);
      if ((peng() & 15u) == 0) std::this_thread::yield();
    }
    consumer.join();
    for (int i = 0; i < kN; ++i) ASSERT_EQ(got[static_cast<size_t>(i)], i);
    ASSERT_LE(s.peak_depth(), depth);
  }
}

TEST(DataflowProperty, DeepPipelineAllDepthOne) {
  // An 8-stage pipeline of depth-1 streams moves every element in
  // order — maximal handshake pressure.
  constexpr int kStages = 8;
  constexpr int kN = 2000;
  std::vector<std::unique_ptr<stream<int>>> links;
  for (int i = 0; i < kStages + 1; ++i) {
    links.push_back(std::make_unique<stream<int>>(1));
  }
  DataflowRegion region;
  region.add_process("source", [&] {
    for (int i = 0; i < kN; ++i) links[0]->write(i);
  });
  for (int st = 0; st < kStages; ++st) {
    region.add_process("stage", [&, st] {
      for (int i = 0; i < kN; ++i) {
        links[static_cast<size_t>(st + 1)]->write(
            links[static_cast<size_t>(st)]->read() + 1);
      }
    });
  }
  std::vector<int> out;
  region.add_process("sink", [&] {
    for (int i = 0; i < kN; ++i) out.push_back(links[kStages]->read());
  });
  region.run();
  ASSERT_EQ(out.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(out[static_cast<size_t>(i)], i + kStages);
  }
}

}  // namespace
}  // namespace dwi::hls
