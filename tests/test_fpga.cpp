// Tests for the FPGA substrate: resource model (Table II), memory
// channel (burst/turnaround semantics, Fig 7 mechanism), and the
// cycle-level kernel simulator (II, backpressure, extrapolation,
// Eq (1)).
#include <gtest/gtest.h>

#include <memory>

#include "fpga/device.h"
#include "fpga/kernel_sim.h"
#include "fpga/memory_channel.h"
#include "fpga/resource_model.h"
#include "rng/configs.h"

namespace dwi::fpga {
namespace {

TEST(DeviceSpec, PaperConstants) {
  const auto& d = adm_pcie_7v3();
  EXPECT_EQ(d.slices, 107'400u);
  EXPECT_EQ(d.dsps, 3'600u);
  EXPECT_EQ(d.bram36, 1'470u);
  EXPECT_DOUBLE_EQ(d.clock_hz, 200e6);
  EXPECT_EQ(d.floats_per_beat(), 16u);
  EXPECT_DOUBLE_EQ(d.peak_bandwidth_bytes(), 12.8e9);
}

TEST(ResourceModel, MaxWorkItemsMatchesPaper) {
  // §IV-B: "Achieved: 6 work-items with Config1,2 and 8 work-items
  // with Config3,4."
  const auto& dev = adm_pcie_7v3();
  EXPECT_EQ(max_work_items(dev, rng::config(rng::ConfigId::kConfig1)), 6u);
  EXPECT_EQ(max_work_items(dev, rng::config(rng::ConfigId::kConfig2)), 6u);
  EXPECT_EQ(max_work_items(dev, rng::config(rng::ConfigId::kConfig3)), 8u);
  EXPECT_EQ(max_work_items(dev, rng::config(rng::ConfigId::kConfig4)), 8u);
}

class TableII : public ::testing::TestWithParam<int> {};

TEST_P(TableII, UtilizationNearPaper) {
  // Table II cells, within a 2.5 percentage-point band.
  struct Row {
    double slice, dsp, bram;
  };
  static const Row paper[4] = {
      {53.43, 23.67, 20.31},
      {52.75, 23.67, 20.31},
      {52.92, 21.56, 24.05},
      {52.72, 21.56, 24.05},
  };
  const int i = GetParam();
  const auto& dev = adm_pcie_7v3();
  const auto& cfg = rng::all_configs()[static_cast<std::size_t>(i)];
  const auto u = estimate_utilization(dev, cfg, max_work_items(dev, cfg));
  EXPECT_NEAR(u.slice_util * 100, paper[i].slice, 2.5) << cfg.name;
  EXPECT_NEAR(u.dsp_util * 100, paper[i].dsp, 2.5) << cfg.name;
  EXPECT_NEAR(u.bram_util * 100, paper[i].bram, 2.5) << cfg.name;
  EXPECT_TRUE(u.routable);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, TableII, ::testing::Values(0, 1, 2, 3));

TEST(ResourceModel, SlicesLimitTheDesign) {
  // Table II: "in all cases the design is limited by the number of
  // slices" — at N_max+1 the slice ceiling is the violated constraint.
  const auto& dev = adm_pcie_7v3();
  for (const auto& cfg : rng::all_configs()) {
    const unsigned n = max_work_items(dev, cfg);
    const auto over = estimate_utilization(dev, cfg, n + 1);
    EXPECT_FALSE(over.routable);
    EXPECT_GT(over.slice_util, dev.route_ceiling_slice_util);
    EXPECT_LT(over.dsp_util, 1.0);
    EXPECT_LT(over.bram_util, 1.0);
  }
}

TEST(ResourceModel, BramInsensitiveToMtPeriod) {
  // Table II reports identical BRAM for Config1 vs Config2: the
  // 512-bit datamover FIFOs dominate. Allow a small model split.
  const auto& dev = adm_pcie_7v3();
  const auto c1 = estimate_utilization(dev, rng::config(rng::ConfigId::kConfig1), 6);
  const auto c2 = estimate_utilization(dev, rng::config(rng::ConfigId::kConfig2), 6);
  EXPECT_NEAR(c1.bram_util, c2.bram_util, 0.02);
}

TEST(ResourceModel, AwsF1FitsManyMoreWorkItems) {
  // The §I motivation projected: an F1-class VU9P fits far more
  // decoupled pipelines than the paper's Virtex-7 board.
  const auto& f1 = aws_f1_vu9p();
  const unsigned v7_c1 =
      max_work_items(adm_pcie_7v3(), rng::config(rng::ConfigId::kConfig1));
  const unsigned f1_c1 =
      max_work_items(f1, rng::config(rng::ConfigId::kConfig1));
  EXPECT_GE(f1_c1, 5 * v7_c1);
  EXPECT_GT(f1.peak_bandwidth_bytes(), adm_pcie_7v3().peak_bandwidth_bytes());
}

TEST(ResourceModel, TransformVariantsOrdering) {
  // Per-work-item resource ordering drives the §II-D2/D3 choices:
  // bit-level ICDF fits the most pipelines, Box-Muller the fewest.
  const auto& dev = adm_pcie_7v3();
  const auto& mt = rng::mt19937_params();
  const unsigned icdf = max_work_items_transform(
      dev, rng::NormalTransform::kIcdfBitwise, mt);
  const unsigned mb = max_work_items_transform(
      dev, rng::NormalTransform::kMarsagliaBray, mt);
  const unsigned bm = max_work_items_transform(
      dev, rng::NormalTransform::kBoxMuller, mt);
  EXPECT_GT(icdf, mb);
  EXPECT_GT(mb, bm);
  EXPECT_EQ(icdf, 8u);
  EXPECT_EQ(mb, 6u);
}

TEST(ResourceModel, SlicePackingModel) {
  EXPECT_EQ(slices_from_luts_ffs(3000, 0), 1000u);   // LUT-bound
  EXPECT_EQ(slices_from_luts_ffs(0, 6000), 1000u);   // FF-bound
  EXPECT_EQ(slices_from_luts_ffs(3000, 12000), 2000u);
}

TEST(MemoryChannel, SingleBurstTiming) {
  MemoryChannelConfig cfg;
  cfg.turnaround_cycles = 10;
  MemoryChannel ch(cfg);
  ASSERT_TRUE(ch.request_burst(0, 4));
  // Burst completes after turnaround + beats cycles.
  for (int i = 0; i < 13; ++i) {
    ch.tick();
    EXPECT_FALSE(ch.burst_done(0)) << "cycle " << i;
  }
  ch.tick();
  EXPECT_TRUE(ch.burst_done(0));
  EXPECT_FALSE(ch.burst_done(0));  // consumed
  EXPECT_EQ(ch.beats_transferred(), 4u);
}

TEST(MemoryChannel, SerializesRequesters) {
  MemoryChannelConfig cfg;
  cfg.turnaround_cycles = 2;
  MemoryChannel ch(cfg);
  ASSERT_TRUE(ch.request_burst(0, 3));
  ASSERT_TRUE(ch.request_burst(1, 3));
  int done0 = -1;
  int done1 = -1;
  for (int c = 0; c < 30; ++c) {
    ch.tick();
    if (done0 < 0 && ch.burst_done(0)) done0 = c;
    if (done1 < 0 && ch.burst_done(1)) done1 = c;
  }
  ASSERT_GE(done0, 0);
  ASSERT_GE(done1, 0);
  EXPECT_EQ(done1 - done0, 5);  // second burst waits for the first
  EXPECT_EQ(ch.bursts_served(), 2u);
}

TEST(MemoryChannel, EffectiveBandwidthFormula) {
  // Saturated channel: bytes/cycle = 64·B/(B + turnaround).
  MemoryChannelConfig cfg;
  cfg.turnaround_cycles = 41;
  MemoryChannel ch(cfg);
  const unsigned beats = 16;
  for (int burst = 0; burst < 200; ++burst) {
    ASSERT_TRUE(ch.request_burst(0, beats));
    while (!ch.burst_done(0)) ch.tick();
  }
  const double expected = 64.0 * beats / (beats + 41.0);
  EXPECT_NEAR(ch.bytes_per_cycle(), expected, 0.2);
}

TEST(MemoryChannel, DramRefreshStealsBandwidth) {
  // With refresh enabled (DDR3-ish: 70 of every 1560 cycles dead), a
  // saturated channel loses ~tRFC/tREFI ≈ 4.3% of its throughput.
  auto bandwidth_with = [](unsigned interval) {
    MemoryChannelConfig cfg;
    cfg.turnaround_cycles = 41;
    cfg.refresh_interval_cycles = interval;
    MemoryChannel ch(cfg);
    for (int burst = 0; burst < 400; ++burst) {
      while (!ch.request_burst(0, 16)) ch.tick();
      while (!ch.burst_done(0)) ch.tick();
    }
    return ch.bytes_per_cycle();
  };
  const double base = bandwidth_with(0);
  const double refreshed = bandwidth_with(1560);
  EXPECT_LT(refreshed, base);
  EXPECT_NEAR(refreshed / base, 1.0 - 70.0 / 1560.0, 0.02);
}

TEST(MemoryChannel, QueueDepthBounded) {
  MemoryChannelConfig cfg;
  cfg.queue_depth = 2;
  MemoryChannel ch(cfg);
  EXPECT_TRUE(ch.request_burst(0, 1));
  EXPECT_TRUE(ch.request_burst(1, 1));
  EXPECT_FALSE(ch.request_burst(2, 1));  // full
}

TEST(KernelSim, DummyProducerTransfersEverything) {
  KernelSimConfig cfg;
  cfg.work_items = 2;
  cfg.outputs_per_work_item = 4096;
  const auto r = simulate_kernel(cfg, [](unsigned) {
    return std::make_unique<DummyProducer>();
  });
  EXPECT_EQ(r.outputs, 8192u);
  EXPECT_EQ(r.attempts, 8192u);  // dummy never rejects
  EXPECT_DOUBLE_EQ(r.rejection_rate(), 0.0);
  EXPECT_GT(r.cycles, 4096u);
}

TEST(KernelSim, RejectionRateMatchesBernoulli) {
  KernelSimConfig cfg;
  cfg.work_items = 4;
  cfg.outputs_per_work_item = 20000;
  const auto r = simulate_kernel(cfg, [](unsigned w) {
    return std::make_unique<BernoulliProducer>(0.7, 99 + w);
  });
  EXPECT_NEAR(r.rejection_rate(), 0.3, 0.02);
}

TEST(KernelSim, InitiationIntervalScalesComputeTime) {
  // With a compute-bound setup (tiny rejection, plenty of bandwidth),
  // II=2 takes ~2x the cycles of II=1.
  KernelSimConfig cfg;
  cfg.work_items = 1;
  cfg.outputs_per_work_item = 50000;
  cfg.burst_beats = 64;
  auto run = [&](unsigned ii) {
    cfg.initiation_interval = ii;
    return simulate_kernel(cfg, [](unsigned) {
      return std::make_unique<BernoulliProducer>(0.8, 7);
    });
  };
  const auto r1 = run(1);
  const auto r2 = run(2);
  EXPECT_NEAR(static_cast<double>(r2.cycles) / static_cast<double>(r1.cycles),
              2.0, 0.1);
}

TEST(KernelSim, MemoryBoundWhenManyWorkItems) {
  // 8 always-valid work-items demand 8 floats/cycle = 32 B/cycle, far
  // above the channel's ~19 B/cycle: compute must stall and the
  // channel saturates near its effective bandwidth.
  KernelSimConfig cfg;
  cfg.work_items = 8;
  cfg.outputs_per_work_item = 50000;
  cfg.burst_beats = 18;
  const auto r = simulate_kernel(cfg, [](unsigned) {
    return std::make_unique<DummyProducer>();
  });
  EXPECT_GT(r.compute_stall_cycles, 0u);
  const double expected_bpc = 64.0 * 18 / (18 + 41.0);
  EXPECT_NEAR(r.channel_bytes_per_cycle, expected_bpc, 1.0);
}

TEST(KernelSim, ComputeBoundWhenRejectionHigh) {
  // 2 work-items at 50 % acceptance demand ~1 float/cycle = 4 B/cycle,
  // well under the channel: no sustained stalls, runtime tracks the
  // attempt count.
  KernelSimConfig cfg;
  cfg.work_items = 2;
  cfg.outputs_per_work_item = 40000;
  const auto r = simulate_kernel(cfg, [](unsigned w) {
    return std::make_unique<BernoulliProducer>(0.5, 3 + w);
  });
  EXPECT_LT(static_cast<double>(r.compute_stall_cycles) /
                static_cast<double>(r.cycles),
            0.02);
  // cycles ≈ attempts per work-item (II = 1).
  EXPECT_NEAR(static_cast<double>(r.cycles),
              static_cast<double>(r.attempts) / 2.0,
              static_cast<double>(r.cycles) * 0.1);
}

TEST(KernelSim, LargerBurstsRaiseBandwidth) {
  // Fig 7's mechanism: with the channel saturated, bigger bursts
  // amortize the turnaround and cut the runtime.
  KernelSimConfig cfg;
  cfg.work_items = 6;
  cfg.outputs_per_work_item = 50000;
  auto cycles_at = [&](unsigned beats) {
    cfg.burst_beats = beats;
    return simulate_kernel(cfg, [](unsigned) {
             return std::make_unique<DummyProducer>();
           }).cycles;
  };
  const auto c1 = cycles_at(1);
  const auto c16 = cycles_at(16);
  const auto c64 = cycles_at(64);
  EXPECT_GT(c1, c16);
  EXPECT_GT(c16, c64);
}

TEST(KernelSim, RecordsOutputsWhenAsked) {
  KernelSimConfig cfg;
  cfg.work_items = 1;
  cfg.outputs_per_work_item = 256;
  cfg.record_outputs = true;
  const auto r = simulate_kernel(cfg, [](unsigned) {
    return std::make_unique<DummyProducer>();
  });
  ASSERT_EQ(r.outputs_data.size(), 256u);
  EXPECT_FLOAT_EQ(r.outputs_data[0], 0.0f);
  EXPECT_FLOAT_EQ(r.outputs_data[255], 255.0f);
}

TEST(KernelSim, ExtrapolationIsLinear) {
  KernelSimConfig cfg;
  cfg.work_items = 2;
  cfg.outputs_per_work_item = 30000;
  const auto r = simulate_kernel(cfg, [](unsigned) {
    return std::make_unique<DummyProducer>();
  });
  const double t_full = extrapolate_seconds(r, 600000, 200e6);
  const double t_sim = r.seconds_at(200e6);
  EXPECT_NEAR(t_full / t_sim, 10.0, 0.01);
}

TEST(KernelSim, Eq1MatchesPaperExample) {
  // §IV-E: t ≈ 683 ms for Config1/2 (6 WI, r = 0.303) and ≈ 422 ms for
  // Config3/4 (8 WI, r = 0.074) at 200 MHz.
  const std::uint64_t outputs = 2'621'440ull * 240ull;
  EXPECT_NEAR(eq1_theoretical_seconds(outputs, 6, 200e6, 0.303), 0.683,
              0.002);
  EXPECT_NEAR(eq1_theoretical_seconds(outputs, 8, 200e6, 0.074), 0.422,
              0.002);
}

TEST(KernelSim, ValidatesConfig) {
  KernelSimConfig cfg;
  cfg.work_items = 0;
  EXPECT_THROW(simulate_kernel(cfg,
                               [](unsigned) {
                                 return std::make_unique<DummyProducer>();
                               }),
               dwi::Error);
}

}  // namespace
}  // namespace dwi::fpga
