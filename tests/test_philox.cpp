// Tests for the Philox4x32-10 counter-based generator: Random123
// known-answer vectors, stream/seek semantics, statistical quality,
// and the structural non-overlap of keyed streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rng/philox.h"
#include "stats/battery.h"

namespace dwi::rng {
namespace {

TEST(Philox, KnownAnswerVectors) {
  // Random123 kat_vectors for philox4x32-10.
  const auto zero = philox4x32({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(zero[0], 0x6627e8d5u);
  EXPECT_EQ(zero[1], 0xe169c58du);
  EXPECT_EQ(zero[2], 0xbc57ac4cu);
  EXPECT_EQ(zero[3], 0x9b00dbd8u);

  const auto ones = philox4x32(
      {0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
      {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(ones[0], 0x408f276du);
  EXPECT_EQ(ones[1], 0x41c83b0eu);
  EXPECT_EQ(ones[2], 0xa20bc7c6u);
  EXPECT_EQ(ones[3], 0x6d5451fdu);

  const auto pi = philox4x32(
      {0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u},
      {0xa4093822u, 0x299f31d0u});
  EXPECT_EQ(pi[0], 0xd16cfe09u);
  EXPECT_EQ(pi[1], 0x94fdccebu);
  EXPECT_EQ(pi[2], 0x5001e420u);
  EXPECT_EQ(pi[3], 0x24126ea1u);
}

TEST(Philox, StreamIsDeterministic) {
  Philox a(42u, 0);
  Philox b(42u, 0);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Philox, DistinctKeysDistinctStreams) {
  Philox a(42u, 0);
  Philox b(42u, 1);
  Philox c(43u, 0);
  int eq_ab = 0;
  int eq_ac = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next();
    if (va == b.next()) ++eq_ab;
    if (va == c.next()) ++eq_ac;
  }
  EXPECT_LT(eq_ab, 3);
  EXPECT_LT(eq_ac, 3);
}

TEST(Philox, SeekIsRandomAccess) {
  // seek(k) lands exactly where k sequential draws would.
  Philox seq(7u, 3);
  std::vector<std::uint32_t> ref(1000);
  for (auto& v : ref) v = seq.next();
  for (std::uint64_t k : {0ull, 1ull, 5ull, 42ull, 999ull}) {
    Philox jumped(7u, 3);
    jumped.seek(k);
    ASSERT_EQ(jumped.next(), ref[k]) << "k=" << k;
  }
}

TEST(Philox, SeekFarIsO1) {
  // Position 2^60 — impossible sequentially, instant for Philox.
  Philox p(9u, 0);
  p.seek(1ull << 60);
  const auto v = p.next();
  Philox q(9u, 0);
  q.seek((1ull << 60) + 1);
  EXPECT_EQ(q.next(), p.next());
  (void)v;
}

TEST(Philox, PassesStatisticalBattery) {
  Philox p(123u, 7);
  const auto report = stats::run_battery([&] { return p.next(); });
  EXPECT_TRUE(report.all_pass(1e-5)) << "min p " << report.min_p_value();
}

TEST(Philox, CounterIncrementCarries) {
  // Force the 32-bit carry: blocks at counter 0xffffffff and 0x1'00000000
  // must differ and be reproducible via seek.
  Philox p(1u, 0);
  p.seek(0xffffffffull * 4);
  const auto at_carry = p.next();
  Philox q(1u, 0);
  q.seek(0x100000000ull * 4);
  EXPECT_NE(at_carry, q.next());
}

TEST(Philox, GenerateBlockMatchesSequentialNext) {
  // Bulk generation must equal k sequential next() calls regardless of
  // how the request is chunked — including chunks that start mid-block
  // (lane != 0), end mid-block, and cross many refills.
  Philox seq(2026u, 5);
  std::vector<std::uint32_t> ref(4096);
  for (auto& v : ref) v = seq.next();

  for (const std::vector<std::size_t>& chunks :
       {std::vector<std::size_t>{4096},
        std::vector<std::size_t>{1, 1, 1, 1, 4092},
        std::vector<std::size_t>{3, 5, 7, 11, 4070},
        std::vector<std::size_t>{2, 4094},
        std::vector<std::size_t>{1023, 1, 1024, 2048}}) {
    Philox bulk(2026u, 5);
    std::vector<std::uint32_t> got;
    got.reserve(4096);
    for (const std::size_t c : chunks) {
      std::vector<std::uint32_t> buf(c);
      bulk.generate_block(buf.data(), buf.size());
      got.insert(got.end(), buf.begin(), buf.end());
    }
    ASSERT_EQ(got, ref);
  }
}

TEST(Philox, GenerateBlockInterleavesWithNext) {
  // Mixing scalar next() and generate_block() walks one tape.
  Philox seq(77u, 1);
  std::vector<std::uint32_t> ref(256);
  for (auto& v : ref) v = seq.next();

  Philox mixed(77u, 1);
  std::vector<std::uint32_t> got;
  std::size_t i = 0;
  while (got.size() < 256) {
    if (i % 2 == 0) {
      got.push_back(mixed.next());
    } else {
      std::uint32_t buf[13];
      const std::size_t take = std::min<std::size_t>(13, 256 - got.size());
      mixed.generate_block(buf, take);
      got.insert(got.end(), buf, buf + take);
    }
    ++i;
  }
  EXPECT_EQ(got, ref);
}

TEST(Philox, SeekAcrossLaneBoundaries) {
  // seek(k) ≡ k× next() for every lane phase around block boundaries.
  Philox seq(31u, 2);
  std::vector<std::uint32_t> ref(64);
  for (auto& v : ref) v = seq.next();
  for (std::uint64_t k = 0; k < 16; ++k) {
    Philox p(31u, 2);
    p.seek(k);
    ASSERT_EQ(p.next(), ref[k]) << "k=" << k;
    // Continue a few more draws: the post-seek state must be the full
    // sequential state, not just the right first output.
    for (std::uint64_t j = k + 1; j < std::min<std::uint64_t>(k + 5, 64); ++j) {
      ASSERT_EQ(p.next(), ref[j]) << "k=" << k << " j=" << j;
    }
  }
}

TEST(Philox, SeekCarriesPast2to32Blocks) {
  // Output index 2^34 = block 2^32: the block index no longer fits the
  // counter's low word. seek must carry into counter word 1; advancing
  // sequentially across the boundary must agree with direct seeks.
  Philox p(6u, 0);
  p.seek((0x100000000ull * 4) - 2);  // two outputs before the carry block
  const std::uint32_t before = p.next();
  (void)before;
  (void)p.next();             // consumes the last pre-carry output
  const std::uint32_t after = p.next();  // first output of block 2^32

  Philox q(6u, 0);
  q.seek(0x100000000ull * 4);
  EXPECT_EQ(q.next(), after);
}

TEST(Philox, Seek128ReachesBeyond2to64Outputs) {
  // The 128-bit overload addresses outputs past 2^64. Consistency
  // check: seek(lo=2^64-2, hi=0) then 4 draws lands where
  // seek(lo=2, hi=1) starts.
  Philox p(8u, 0);
  p.seek(~std::uint64_t{0} - 1, 0);  // output index 2^64 - 2
  (void)p.next();
  (void)p.next();                    // now at output 2^64 = (lo=0, hi=1)
  (void)p.next();
  (void)p.next();                    // now at (lo=2, hi=1)
  const std::uint32_t expect = p.next();

  Philox q(8u, 0);
  q.seek(2, 1);
  EXPECT_EQ(q.next(), expect);
}

TEST(Philox, SkipIsRelativeSeek) {
  // skip(k) from any phase ≡ k discarded next() calls — including
  // phases mid-block and skips that end mid-block.
  for (const std::uint64_t pre : {0ull, 1ull, 3ull, 4ull, 6ull}) {
    for (const std::uint64_t k : {0ull, 1ull, 2ull, 4ull, 5ull, 101ull}) {
      Philox a(13u, 4);
      Philox b(13u, 4);
      for (std::uint64_t i = 0; i < pre; ++i) {
        (void)a.next();
        (void)b.next();
      }
      for (std::uint64_t i = 0; i < k; ++i) (void)a.next();
      b.skip(k);
      for (int i = 0; i < 8; ++i) {
        ASSERT_EQ(a.next(), b.next()) << "pre=" << pre << " k=" << k;
      }
    }
  }
}

TEST(CounterSubstreams, StreamsTileTheMasterSequence) {
  // stream(i) is the master Philox sequence offset by i·stride —
  // consecutive substreams tile it with no gaps or overlap.
  constexpr std::uint64_t kStride = 37;  // deliberately not a multiple of 4
  const CounterSubstreams subs(99u, kStride);
  Philox master(99u, 0);
  for (std::uint64_t i = 0; i < 8; ++i) {
    Philox s = subs.stream(i);
    for (std::uint64_t j = 0; j < kStride; ++j) {
      ASSERT_EQ(s.next(), master.next()) << "substream " << i << " pos " << j;
    }
  }
}

TEST(CounterSubstreams, DerivationIsOrderIndependent) {
  const CounterSubstreams subs(5u, 1ull << 26);
  Philox a1 = subs.stream(1000);
  Philox b = subs.stream(3);
  Philox a2 = subs.stream(1000);
  (void)b;
  for (int i = 0; i < 32; ++i) ASSERT_EQ(a1.next(), a2.next());
}

TEST(CounterSubstreams, HugeIndexTimesStrideDoesNotWrap) {
  // index·stride overflows 64 bits; the 128-bit position must keep
  // distinct indices on distinct streams instead of aliasing mod 2^64.
  constexpr std::uint64_t kStride = 1ull << 26;
  const CounterSubstreams subs(12u, kStride);
  // These two indices collide mod 2^64/stride iff the product wraps.
  Philox a = subs.stream(1ull << 40);
  Philox b = subs.stream((1ull << 40) + (1ull << 38));  // product > 2^64
  int eq = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next() == b.next()) ++eq;
  }
  EXPECT_LT(eq, 3);
}

TEST(AdaptedPhilox, EnableGatingMatchesAdaptedMersenneTwister) {
  // next(false) peeks without committing; next(true) commits exactly
  // one step — the same contract AdaptedMersenneTwister provides.
  Philox ref(55u, 0);
  AdaptedPhilox gated{Philox(55u, 0)};
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t expect = ref.next();
    // Any number of disabled peeks returns the same value...
    ASSERT_EQ(gated.next(false), expect);
    ASSERT_EQ(gated.next(false), expect);
    // ...and the enabled draw commits it.
    ASSERT_EQ(gated.next(true), expect);
  }
  EXPECT_EQ(gated.committed_steps(), 100u);
}

TEST(AdaptedPhilox, GenerateBlockContinuesTheGatedStream) {
  Philox ref(55u, 3);
  std::vector<std::uint32_t> expect(40);
  for (auto& v : expect) v = ref.next();

  AdaptedPhilox gated{Philox(55u, 3)};
  std::vector<std::uint32_t> got(40);
  for (int i = 0; i < 8; ++i) got[static_cast<std::size_t>(i)] = gated.next(true);
  gated.generate_block(got.data() + 8, 32);
  EXPECT_EQ(got, expect);
  EXPECT_EQ(gated.committed_steps(), 40u);
}

}  // namespace
}  // namespace dwi::rng
