// Tests for the Philox4x32-10 counter-based generator: Random123
// known-answer vectors, stream/seek semantics, statistical quality,
// and the structural non-overlap of keyed streams.
#include <gtest/gtest.h>

#include "rng/philox.h"
#include "stats/battery.h"

namespace dwi::rng {
namespace {

TEST(Philox, KnownAnswerVectors) {
  // Random123 kat_vectors for philox4x32-10.
  const auto zero = philox4x32({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(zero[0], 0x6627e8d5u);
  EXPECT_EQ(zero[1], 0xe169c58du);
  EXPECT_EQ(zero[2], 0xbc57ac4cu);
  EXPECT_EQ(zero[3], 0x9b00dbd8u);

  const auto ones = philox4x32(
      {0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
      {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(ones[0], 0x408f276du);
  EXPECT_EQ(ones[1], 0x41c83b0eu);
  EXPECT_EQ(ones[2], 0xa20bc7c6u);
  EXPECT_EQ(ones[3], 0x6d5451fdu);

  const auto pi = philox4x32(
      {0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u},
      {0xa4093822u, 0x299f31d0u});
  EXPECT_EQ(pi[0], 0xd16cfe09u);
  EXPECT_EQ(pi[1], 0x94fdccebu);
  EXPECT_EQ(pi[2], 0x5001e420u);
  EXPECT_EQ(pi[3], 0x24126ea1u);
}

TEST(Philox, StreamIsDeterministic) {
  Philox a(42u, 0);
  Philox b(42u, 0);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Philox, DistinctKeysDistinctStreams) {
  Philox a(42u, 0);
  Philox b(42u, 1);
  Philox c(43u, 0);
  int eq_ab = 0;
  int eq_ac = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next();
    if (va == b.next()) ++eq_ab;
    if (va == c.next()) ++eq_ac;
  }
  EXPECT_LT(eq_ab, 3);
  EXPECT_LT(eq_ac, 3);
}

TEST(Philox, SeekIsRandomAccess) {
  // seek(k) lands exactly where k sequential draws would.
  Philox seq(7u, 3);
  std::vector<std::uint32_t> ref(1000);
  for (auto& v : ref) v = seq.next();
  for (std::uint64_t k : {0ull, 1ull, 5ull, 42ull, 999ull}) {
    Philox jumped(7u, 3);
    jumped.seek(k);
    ASSERT_EQ(jumped.next(), ref[k]) << "k=" << k;
  }
}

TEST(Philox, SeekFarIsO1) {
  // Position 2^60 — impossible sequentially, instant for Philox.
  Philox p(9u, 0);
  p.seek(1ull << 60);
  const auto v = p.next();
  Philox q(9u, 0);
  q.seek((1ull << 60) + 1);
  EXPECT_EQ(q.next(), p.next());
  (void)v;
}

TEST(Philox, PassesStatisticalBattery) {
  Philox p(123u, 7);
  const auto report = stats::run_battery([&] { return p.next(); });
  EXPECT_TRUE(report.all_pass(1e-5)) << "min p " << report.min_p_value();
}

TEST(Philox, CounterIncrementCarries) {
  // Force the 32-bit carry: blocks at counter 0xffffffff and 0x1'00000000
  // must differ and be reproducible via seek.
  Philox p(1u, 0);
  p.seek(0xffffffffull * 4);
  const auto at_carry = p.next();
  Philox q(1u, 0);
  q.seek(0x100000000ull * 4);
  EXPECT_NE(at_carry, q.next());
}

}  // namespace
}  // namespace dwi::rng
