// Tests for the minicl Program build flow and the finance risk
// contributions, plus the ap_uint division added for HLS completeness.
#include <gtest/gtest.h>

#include <random>

#include "common/error.h"
#include "finance/contributions.h"
#include "hls/ap_uint.h"
#include "minicl/context.h"
#include "minicl/program.h"

namespace dwi {
namespace {

// --- minicl::Program --------------------------------------------------------

TEST(Program, FpgaAutoBuildPicksPaperComputeUnits) {
  minicl::Program p(minicl::find_device("FPGA"),
                    rng::config(rng::ConfigId::kConfig1));
  const auto r = p.build();
  EXPECT_EQ(r.status, minicl::BuildStatus::kSuccess);
  EXPECT_EQ(r.compute_units, 6u);  // Table II
  EXPECT_TRUE(r.utilization.routable);
  EXPECT_GT(r.build_seconds, 3600.0);  // the hardware flow takes hours
  EXPECT_NE(r.log.find("timing met"), std::string::npos);
}

TEST(Program, FpgaOverSubscribedBuildFailsPar) {
  minicl::Program p(minicl::find_device("FPGA"),
                    rng::config(rng::ConfigId::kConfig3));
  const auto ok = p.build(8);
  EXPECT_EQ(ok.status, minicl::BuildStatus::kSuccess);
  const auto fail = p.build(9);  // one past Table II's maximum
  EXPECT_EQ(fail.status, minicl::BuildStatus::kPlaceAndRouteFailed);
  EXPECT_NE(fail.log.find("place and route failed"), std::string::npos);
}

TEST(Program, FixedArchitectureJitIsFast) {
  minicl::Program p(minicl::find_device("GPU"),
                    rng::config(rng::ConfigId::kConfig2));
  const auto r = p.build();
  EXPECT_EQ(r.status, minicl::BuildStatus::kSuccess);
  EXPECT_LT(r.build_seconds, 5.0);
}

// --- minicl::Context / Buffer ------------------------------------------------

TEST(Context, BufferLifecycleAndAccounting) {
  minicl::Context ctx(minicl::default_devices());
  auto a = ctx.create_buffer(1'000'000);
  auto b = ctx.create_buffer(2'500'000'000ull, minicl::Buffer::Access::kReadOnly);
  EXPECT_EQ(ctx.buffer_count(), 2u);
  EXPECT_EQ(ctx.allocated_bytes(), 2'501'000'000ull);
  EXPECT_EQ(a->size(), 1'000'000u);
  EXPECT_EQ(b->access(), minicl::Buffer::Access::kReadOnly);
  EXPECT_THROW(ctx.create_buffer(0), Error);
}

TEST(Context, QueueCreationAndBoundsCheckedReads) {
  minicl::Context ctx(minicl::default_devices());
  auto queue = ctx.create_queue(3);  // the FPGA combination
  auto buf = ctx.create_buffer(1024);
  auto e = minicl::enqueue_read_buffer(queue, *buf, 1024);
  EXPECT_GT(e->duration(), 0.0);
  EXPECT_THROW(minicl::enqueue_read_buffer(queue, *buf, 1025), Error);
  auto wo = ctx.create_buffer(64, minicl::Buffer::Access::kWriteOnly);
  EXPECT_THROW(minicl::enqueue_read_buffer(queue, *wo, 64), Error);
  EXPECT_THROW(ctx.create_queue(99), Error);
}

// --- finance contributions --------------------------------------------------

TEST(Contributions, SumToExpectedShortfall) {
  const auto p = finance::Portfolio::synthetic(
      80, {{1.39, "a"}, {0.6, "b"}}, 9);
  finance::McConfig mc;
  mc.num_scenarios = 8'000;
  const auto report = finance::shortfall_contributions(
      p, mc, finance::sampler_gamma_source(p, 5), 0.95);
  double sum = 0.0;
  for (const auto& c : report.contributions) {
    sum += c.shortfall_contribution;
  }
  EXPECT_NEAR(sum / report.expected_shortfall, 1.0, 1e-9);
  EXPECT_GE(report.expected_shortfall, report.value_at_risk);
}

TEST(Contributions, TailContributionExceedsUnconditionalLoss) {
  // In the tail, (almost) every obligor loses more than uncondition-
  // ally; the big concentrated names dominate the ranking.
  const auto p = finance::Portfolio::synthetic(60, {{2.0, "s"}}, 12);
  finance::McConfig mc;
  mc.num_scenarios = 10'000;
  const auto report = finance::shortfall_contributions(
      p, mc, finance::sampler_gamma_source(p, 8), 0.95);
  double above = 0;
  for (const auto& c : report.contributions) {
    if (c.shortfall_contribution >= c.expected_loss) ++above;
  }
  EXPECT_GT(above / static_cast<double>(report.contributions.size()), 0.8);

  const auto ranked = report.ranked();
  EXPECT_GE(ranked.front().shortfall_contribution,
            ranked.back().shortfall_contribution);
}

TEST(Contributions, ValidatesTailSize) {
  const auto p = finance::Portfolio::synthetic(10, {{1.0, "s"}}, 3);
  finance::McConfig mc;
  mc.num_scenarios = 100;
  EXPECT_THROW(finance::shortfall_contributions(
                   p, mc, finance::sampler_gamma_source(p, 1), 0.999),
               Error);
}

// --- ap_uint division --------------------------------------------------------

TEST(ApUintDiv, MatchesUint64) {
  std::mt19937_64 eng(3);
  for (int it = 0; it < 500; ++it) {
    const std::uint64_t a = eng();
    const std::uint64_t b = (eng() % 2 == 0) ? (eng() >> 32) | 1u
                                             : eng() | 1u;
    hls::ap_uint<64> x(a);
    hls::ap_uint<64> y(b);
    ASSERT_EQ((x / y).to_uint64(), a / b);
    ASSERT_EQ((x % y).to_uint64(), a % b);
  }
}

TEST(ApUintDiv, WideIdentity) {
  // (q·b + r == a) and (r < b) for random 512-bit operands.
  std::mt19937_64 eng(7);
  for (int it = 0; it < 50; ++it) {
    hls::ap_uint<512> a;
    hls::ap_uint<512> b;
    for (unsigned w = 0; w < 8; ++w) {
      a.set_range(w * 64 + 63, w * 64, eng());
      if (w < 3) b.set_range(w * 64 + 63, w * 64, eng());
    }
    if (b.is_zero()) b = hls::ap_uint<512>(1);
    hls::ap_uint<512> q;
    hls::ap_uint<512> r;
    hls::ap_uint<512>::divmod(a, b, &q, &r);
    ASSERT_TRUE(r < b);
    ASSERT_EQ(q * b + r, a);
  }
}

TEST(ApUintDiv, DivisionBySmallConstants) {
  hls::ap_uint<128> x;
  x.set_range(127, 64, 1);  // x = 2^64
  // 2^64 / 2 = 2^63; remainder 0.
  const auto half = x / hls::ap_uint<128>(2);
  EXPECT_TRUE(half.bit(63));
  EXPECT_EQ(half.get_range64(62, 0), 0u);
  EXPECT_FALSE(half.bit(64));
  EXPECT_TRUE((x % hls::ap_uint<128>(2)).is_zero());
  // (2^64 + 5) / 3 = 6148914691236517207 remainder 0... check identity.
  hls::ap_uint<128> y = x + hls::ap_uint<128>(5);
  hls::ap_uint<128> q;
  hls::ap_uint<128> r;
  hls::ap_uint<128>::divmod(y, hls::ap_uint<128>(3), &q, &r);
  EXPECT_EQ(q * hls::ap_uint<128>(3) + r, y);
  EXPECT_TRUE(r < hls::ap_uint<128>(3));
}

}  // namespace
}  // namespace dwi
